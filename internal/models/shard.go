package models

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mega/internal/compute"
	"mega/internal/nn"
	"mega/internal/tensor"
)

// This file implements the shard-parallel execution engine for the MEGA
// path representation: the path's working rows are split into contiguous
// worker chunks with ω-row halos, each worker runs the real per-layer GT
// forward/backward over its chunk, and halo embeddings plus cross-chunk
// duplicate-group and edge-fold synchronisation travel between workers
// over channels. The output is bit-identical to the single-engine
// GT.Forward over the same context at any worker count.
//
// Determinism protocol (the whole design reduces to one rule): every
// floating-point reduction is performed by exactly one owner, over RAW
// rows, in ascending global order, starting from a zero base — the same
// sequence of adds the single engine's SegmentMean/ScatterAddRows kernels
// execute. Workers never exchange partial sums, because partial sums
// regroup the additions and break bit-identity.
//
// The path is always cut into shardChunks=8 canonical µchunks whose
// bounds, pair assignment, edge ownership, and tape structure are
// independent of the worker count; k workers own contiguous runs of
// µchunks (k must divide 8). Per-µchunk tapes therefore run the same
// kernels over the same rows at every k, which pins not only the forward
// values but also the backward gradients to k-invariant bit patterns.
const shardChunks = 8

// errShardAborted unwinds a worker that was waiting on a peer which
// panicked; it is recognised and swallowed by the worker guard.
var errShardAborted = errors.New("models: shard worker aborted")

// ErrUnshardable marks contexts the shard plan rejects for structural
// reasons (not a MEGA context, path shorter than the 8 canonical µchunks,
// or attention window wider than some µchunk). Callers fall back to the
// monolithic engine on it — the answer is bit-identical either way — and
// the distributed supervisor treats it as permanent: retrying on another
// replica cannot make a context shardable.
var ErrUnshardable = errors.New("models: context not shardable")

// ShardStats reports the traffic and timing of the last Forward (and, when
// run, Backward) of a ShardEngine. Forward message and byte counts are
// logical — one message per (halo boundary, layer), per (duplicate group,
// non-owner worker, layer, direction), per (edge, non-owner referencing
// worker, layer, direction) — exactly the granularity
// dist.AnalyzePathPartition predicts.
type ShardStats struct {
	Workers int

	HaloMessages int64
	HaloBytes    int64
	SyncMessages int64
	SyncBytes    int64
	EdgeMessages int64
	EdgeBytes    int64

	CollectMessages int64
	CollectBytes    int64

	BackwardMessages int64
	BackwardBytes    int64

	// Per-worker wall time of the forward and backward waves, in ns.
	ForwardNs  []int64
	BackwardNs []int64
}

// ForwardMessages totals the per-layer exchange messages (halo + duplicate
// sync + edge fold/broadcast), the quantity AnalyzePathPartition predicts
// per layer.
func (s ShardStats) ForwardMessages() int64 {
	return s.HaloMessages + s.SyncMessages + s.EdgeMessages
}

// ForwardBytes totals the per-layer exchange bytes.
func (s ShardStats) ForwardBytes() int64 {
	return s.HaloBytes + s.SyncBytes + s.EdgeBytes
}

// mcShard is the static plan of one canonical µchunk.
type mcShard struct {
	j      int // µchunk index
	lo, hi int // own working rows [lo, hi)
	// extLo/extHi is the pair-derived extended row range the µchunk's tape
	// computes over: own rows plus the sender rows its pairs reach. It is
	// derived from the pair list only, so it is identical at every worker
	// count (worker halos are a messaging concern, not a tape concern).
	extLo, extHi int

	pairs []int32 // global pair ids assigned here (receiver in own rows), ascending
	lctx  *Context

	localEdges []int32 // global edge ids this µchunk holds features for, ascending
	edgeLocal  map[int32]int
	ownEdges   []int32 // owned subset of localEdges, ascending

	nodeIDs   []int32 // NodeTypeIDs of own rows
	edgeTypes []int32 // EdgeTypeIDs of localEdges

	// Edge-fold plan (owner side): every pair referencing an owned edge,
	// ascending global pair id, with its owned-edge segment — the exact row
	// order EdgeMean accumulates in the single engine.
	foldPairs []int32
	foldSeg   []int32
}

// dupGroup is one duplicate-position group (a node revisited by the path).
type dupGroup struct {
	members  []int32 // global rows, ascending
	inv      float64 // 1/len(members), computed as SegmentMean does
	ownerW   int     // worker of members[0]
	workers  []int   // distinct member workers, ascending
	byWorker map[int][]int32
}

// edgeSendPlan schedules one forward fold message: the rows of this
// worker's pairs referencing a remotely-owned edge.
type edgeSendPlan struct {
	edge   int32
	ownerW int
	pairs  []int32 // this worker's referencing pairs, ascending
}

// edgeGradSendPlan schedules one backward edge-gradient fold message: the
// per-µchunk feature-gradient rows for a remotely-owned edge.
type edgeGradSendPlan struct {
	edge   int32
	ownerW int
	mcs    []int // this worker's µchunks holding the edge, ascending
}

// localEdgePlan lists, per worker, which of its µchunks hold an edge's
// features (for applying one broadcast to every holder).
type localEdgePlan struct {
	edge int32
	mcs  []int
}

// shardPlan is the full static execution plan for one (context, k) pair.
type shardPlan struct {
	workers, dim, layers, heads int
	L, omega                    int

	ub  []int // µchunk bounds, len shardChunks+1 (ceil-division cuts)
	wb  []int // worker bounds, len workers+1
	mcW []int // µchunk → worker

	mcs  []*mcShard
	wMCs [][]int // worker → its µchunks, ascending

	syncActive bool
	groups     []*dupGroup
	rowGroup   []int32 // global row → group index or -1

	edgeOwner      []int32 // edge → owning µchunk
	edgeRefWorkers [][]int // edge → distinct referencing workers, ascending
	edgeRefMCs     [][]int // edge → distinct referencing µchunks, ascending
	pairMC         []int32 // pair → its µchunk
	pairRow        []int32 // pair → row within its µchunk's pair list
	edgeIdx        []int32 // the context's global pair→edge map

	wEdgeSend     [][]edgeSendPlan
	wEdgeGradSend [][]edgeGradSendPlan
	wLocalEdges   [][]localEdgePlan

	fwdCap, bwdCap []int // exact per-worker incoming message counts per wave
}

func (p *shardPlan) mcOfRow(r int) int { return r * shardChunks / p.L }
func (p *shardPlan) wOfRow(r int) int  { return p.mcW[p.mcOfRow(r)] }

// gtReplica is one µchunk's grad-isolated, data-shared view of the model.
type gtReplica struct {
	encNode, encEdge *nn.Embedding
	layers           []*gtLayer
}

// replica builds a full parameter replica of m (minus the readout, which
// only the root tape touches) plus its parameter list in master order.
func (m *GT) replica() (*gtReplica, []*tensor.Tensor) {
	r := &gtReplica{encNode: m.enc.node.Replicate(), encEdge: m.enc.edge.Replicate()}
	params := nn.CollectParams(r.encNode, r.encEdge)
	for _, l := range m.layers {
		rl := &gtLayer{
			q: l.q.Replicate(), k: l.k.Replicate(), v: l.v.Replicate(), o: l.o.Replicate(),
			we: l.we.Replicate(), oe: l.oe.Replicate(),
			ffnH1: l.ffnH1.Replicate(), ffnH2: l.ffnH2.Replicate(),
			ffnE1: l.ffnE1.Replicate(), ffnE2: l.ffnE2.Replicate(),
			lnH1: l.lnH1.Replicate(), lnH2: l.lnH2.Replicate(),
			lnE1: l.lnE1.Replicate(), lnE2: l.lnE2.Replicate(),
		}
		r.layers = append(r.layers, rl)
		params = append(params, nn.CollectParams(
			rl.q, rl.k, rl.v, rl.o, rl.we, rl.oe,
			rl.ffnH1, rl.ffnH2, rl.ffnE1, rl.ffnE2,
			rl.lnH1, rl.lnH2, rl.lnE1, rl.lnE2)...)
	}
	return r, params
}

// ShardEngine runs a GT model over a MEGA context split across k chunk
// workers. Construct once per (model, context, k); Forward/Backward are
// then called once per training step:
//
//	out := eng.Forward()          // bit-identical to model.Forward(ctx)
//	loss := lossFor(task, out, ctx)
//	loss.Backward()               // seeds readout + final-embedding grads
//	eng.Backward()                // shard backward + replica grad fold
//	opt.Step()
type ShardEngine struct {
	model *GT
	ctx   *Context
	plan  *shardPlan

	reps         []*gtReplica
	repParams    [][]*tensor.Tensor
	masterParams []*tensor.Tensor // non-readout prefix, aligned with repParams

	run *shardRun
}

// NewShardEngine validates the plan and builds the per-µchunk replicas.
// ctx must be a MEGA context (built by NewMegaContext*); the engine always
// uses the staged attention pipeline, which is bit-identical to the fused
// one.
func NewShardEngine(m *GT, ctx *Context, workers int) (*ShardEngine, error) {
	plan, err := buildShardPlan(ctx, workers, m.cfg.Dim, len(m.layers), m.cfg.Heads)
	if err != nil {
		return nil, err
	}
	e := &ShardEngine{model: m, ctx: ctx, plan: plan}
	for j := 0; j < shardChunks; j++ {
		rep, params := m.replica()
		e.reps = append(e.reps, rep)
		e.repParams = append(e.repParams, params)
	}
	all := m.Params()
	e.masterParams = all[:len(all)-len(m.readout.Params())]
	if len(e.masterParams) != len(e.repParams[0]) {
		return nil, fmt.Errorf("models: shard replica has %d params, master %d",
			len(e.repParams[0]), len(e.masterParams))
	}
	return e, nil
}

// buildShardPlan derives the static chunking, ownership, and messaging
// schedule for ctx at the given worker count.
func buildShardPlan(ctx *Context, workers, dim, layers, heads int) (*shardPlan, error) {
	if ctx.posToNode == nil {
		return nil, fmt.Errorf("%w: shard engine requires a MEGA context", ErrUnshardable)
	}
	if workers < 1 {
		return nil, fmt.Errorf("models: shard workers %d < 1", workers)
	}
	if workers > shardChunks || shardChunks%workers != 0 {
		return nil, fmt.Errorf("models: shard workers %d must divide %d", workers, shardChunks)
	}
	L := ctx.NumRows
	if L < shardChunks {
		return nil, fmt.Errorf("%w: path length %d shorter than %d chunks", ErrUnshardable, L, shardChunks)
	}
	omega := ctx.maxWindow
	if omega < 1 {
		omega = 1
	}
	p := &shardPlan{
		workers: workers, dim: dim, layers: layers, heads: heads,
		L: L, omega: omega,
		edgeIdx: ctx.EdgeIdx,
	}
	// Ceil-division µchunk bounds: ub[j] = ⌈j·L/C⌉ is exactly the partition
	// induced by mcOfRow(r) = r·C/L, and worker bounds at k | C refine it.
	p.ub = make([]int, shardChunks+1)
	for j := 0; j <= shardChunks; j++ {
		p.ub[j] = (j*L + shardChunks - 1) / shardChunks
	}
	p.wb = make([]int, workers+1)
	per := shardChunks / workers
	for w := 0; w <= workers; w++ {
		p.wb[w] = p.ub[w*per]
	}
	p.mcW = make([]int, shardChunks)
	p.wMCs = make([][]int, workers)
	for j := 0; j < shardChunks; j++ {
		w := j / per
		p.mcW[j] = w
		p.wMCs[w] = append(p.wMCs[w], j)
		if p.ub[j+1]-p.ub[j] < omega {
			return nil, fmt.Errorf("%w: window %d exceeds chunk %d length %d (path %d)",
				ErrUnshardable, omega, j, p.ub[j+1]-p.ub[j], L)
		}
	}

	// Pair assignment: a pair lives with its receiver's µchunk, so each
	// receiver's softmax group is complete within one tape and local pair
	// lists (ascending global id) preserve the kernels' accumulation order.
	nPairs := len(ctx.RecvIdx)
	p.pairMC = make([]int32, nPairs)
	p.pairRow = make([]int32, nPairs)
	mcPairs := make([][]int32, shardChunks)
	for pp := 0; pp < nPairs; pp++ {
		j := p.mcOfRow(int(ctx.RecvIdx[pp]))
		p.pairMC[pp] = int32(j)
		p.pairRow[pp] = int32(len(mcPairs[j]))
		mcPairs[j] = append(mcPairs[j], int32(pp))
	}

	// Edge ownership: the µchunk of the first referencing pair; edges no
	// pair references are spread by index (they generate no traffic).
	p.edgeOwner = make([]int32, ctx.NumEdges)
	for e := range p.edgeOwner {
		p.edgeOwner[e] = -1
	}
	edgeRefPairs := make([][]int32, ctx.NumEdges)
	for pp := 0; pp < nPairs; pp++ {
		e := ctx.EdgeIdx[pp]
		if p.edgeOwner[e] < 0 {
			p.edgeOwner[e] = p.pairMC[pp]
		}
		edgeRefPairs[e] = append(edgeRefPairs[e], int32(pp))
	}
	for e := range p.edgeOwner {
		if p.edgeOwner[e] < 0 {
			p.edgeOwner[e] = int32(e * shardChunks / ctx.NumEdges)
		}
	}
	p.edgeRefWorkers = make([][]int, ctx.NumEdges)
	p.edgeRefMCs = make([][]int, ctx.NumEdges)
	for e, refs := range edgeRefPairs {
		var seenMC [shardChunks]bool
		for _, pp := range refs {
			seenMC[p.pairMC[pp]] = true
		}
		var seenW [shardChunks]bool
		for j := 0; j < shardChunks; j++ {
			if seenMC[j] {
				p.edgeRefMCs[e] = append(p.edgeRefMCs[e], j)
				if !seenW[p.mcW[j]] {
					seenW[p.mcW[j]] = true
					p.edgeRefWorkers[e] = append(p.edgeRefWorkers[e], p.mcW[j])
				}
			}
		}
	}

	// Per-µchunk shards: extended ranges, local contexts, edge tables.
	for j := 0; j < shardChunks; j++ {
		mc := &mcShard{j: j, lo: p.ub[j], hi: p.ub[j+1]}
		mc.extLo, mc.extHi = mc.lo, mc.hi
		for _, pp := range mcPairs[j] {
			for _, rr := range [2]int32{ctx.RecvIdx[pp], ctx.SendIdx[pp]} {
				if int(rr) < mc.extLo {
					mc.extLo = int(rr)
				}
				if int(rr) >= mc.extHi {
					mc.extHi = int(rr) + 1
				}
			}
		}
		// Pairs stay within the band window, so the extended range must sit
		// inside the adjacent µchunks; anything else is a plan bug.
		adjLo, adjHi := 0, L
		if j > 0 {
			adjLo = p.ub[j-1]
		}
		if j < shardChunks-1 {
			adjHi = p.ub[j+2]
		}
		if mc.extLo < adjLo || mc.extHi > adjHi {
			return nil, fmt.Errorf("models: chunk %d extended range [%d,%d) escapes adjacency [%d,%d)",
				j, mc.extLo, mc.extHi, adjLo, adjHi)
		}
		mc.pairs = mcPairs[j]
		// Local edge table: edges referenced by this µchunk's pairs plus
		// the edges it owns, ascending global id.
		inLocal := make(map[int32]bool)
		for _, pp := range mc.pairs {
			inLocal[ctx.EdgeIdx[pp]] = true
		}
		for e := int32(0); int(e) < ctx.NumEdges; e++ {
			if p.edgeOwner[e] == int32(j) {
				mc.ownEdges = append(mc.ownEdges, e)
				inLocal[e] = true
			}
		}
		mc.edgeLocal = make(map[int32]int, len(inLocal))
		for e := int32(0); int(e) < ctx.NumEdges; e++ {
			if inLocal[e] {
				mc.edgeLocal[e] = len(mc.localEdges)
				mc.localEdges = append(mc.localEdges, e)
			}
		}
		mc.nodeIDs = ctx.NodeTypeIDs[mc.lo:mc.hi]
		mc.edgeTypes = make([]int32, len(mc.localEdges))
		for i, e := range mc.localEdges {
			mc.edgeTypes[i] = ctx.EdgeTypeIDs[e]
		}
		// Localised context for the A1 (attention + node stream) tape.
		lctx := &Context{
			NumRows:  mc.extHi - mc.extLo,
			NumEdges: len(mc.localEdges),
			RecvIdx:  make([]int32, len(mc.pairs)),
			SendIdx:  make([]int32, len(mc.pairs)),
			EdgeIdx:  make([]int32, len(mc.pairs)),
		}
		for i, pp := range mc.pairs {
			lctx.RecvIdx[i] = ctx.RecvIdx[pp] - int32(mc.extLo)
			lctx.SendIdx[i] = ctx.SendIdx[pp] - int32(mc.extLo)
			lctx.EdgeIdx[i] = int32(mc.edgeLocal[ctx.EdgeIdx[pp]])
		}
		mc.lctx = lctx
		p.mcs = append(p.mcs, mc)
	}
	// Owner-side fold plan: all referencing pairs of owned edges, ascending
	// global pair id — the single engine's EdgeMean row order.
	ownIdx := make([]map[int32]int32, shardChunks)
	for j, mc := range p.mcs {
		ownIdx[j] = make(map[int32]int32, len(mc.ownEdges))
		for i, e := range mc.ownEdges {
			ownIdx[j][e] = int32(i)
		}
	}
	for pp := 0; pp < nPairs; pp++ {
		e := ctx.EdgeIdx[pp]
		jo := int(p.edgeOwner[e])
		mc := p.mcs[jo]
		mc.foldPairs = append(mc.foldPairs, int32(pp))
		mc.foldSeg = append(mc.foldSeg, ownIdx[jo][e])
	}

	// Duplicate groups from the node-slot map, ordered by first member row.
	slotRows := make(map[int32][]int32)
	var slotOrder []int32
	for r := 0; r < L; r++ {
		s := ctx.posToNode[r]
		if _, ok := slotRows[s]; !ok {
			slotOrder = append(slotOrder, s)
		}
		slotRows[s] = append(slotRows[s], int32(r))
	}
	p.rowGroup = make([]int32, L)
	for r := range p.rowGroup {
		p.rowGroup[r] = -1
	}
	for _, s := range slotOrder {
		rows := slotRows[s]
		if len(rows) < 2 {
			continue
		}
		g := &dupGroup{
			members:  rows,
			inv:      1 / float64(len(rows)),
			ownerW:   p.wOfRow(int(rows[0])),
			byWorker: make(map[int][]int32),
		}
		var seenW [shardChunks]bool
		for _, rr := range rows {
			w := p.wOfRow(int(rr))
			if !seenW[w] {
				seenW[w] = true
			}
			g.byWorker[w] = append(g.byWorker[w], rr)
		}
		for w := 0; w < workers; w++ {
			if seenW[w] {
				g.workers = append(g.workers, w)
			}
		}
		for _, rr := range rows {
			p.rowGroup[rr] = int32(len(p.groups))
		}
		p.groups = append(p.groups, g)
	}
	p.syncActive = len(p.groups) > 0

	// Per-worker send schedules and edge/µchunk holder lists, ascending
	// edge id for a deterministic schedule.
	p.wEdgeSend = make([][]edgeSendPlan, workers)
	p.wEdgeGradSend = make([][]edgeGradSendPlan, workers)
	p.wLocalEdges = make([][]localEdgePlan, workers)
	holders := make([][]int, ctx.NumEdges) // edge → µchunks with it in localEdges
	for j, mc := range p.mcs {
		for _, e := range mc.localEdges {
			holders[e] = append(holders[e], j)
		}
	}
	for e := int32(0); int(e) < ctx.NumEdges; e++ {
		ownerW := p.mcW[p.edgeOwner[e]]
		for _, w := range p.edgeRefWorkers[e] {
			if w == ownerW {
				continue
			}
			var pairs []int32
			for _, pp := range edgeRefPairs[e] {
				if p.mcW[p.pairMC[pp]] == w {
					pairs = append(pairs, pp)
				}
			}
			var mcs []int
			for _, j := range p.edgeRefMCs[e] {
				if p.mcW[j] == w {
					mcs = append(mcs, j)
				}
			}
			p.wEdgeSend[w] = append(p.wEdgeSend[w], edgeSendPlan{edge: e, ownerW: ownerW, pairs: pairs})
			p.wEdgeGradSend[w] = append(p.wEdgeGradSend[w], edgeGradSendPlan{edge: e, ownerW: ownerW, mcs: mcs})
		}
		byW := make(map[int][]int)
		for _, j := range holders[e] {
			byW[p.mcW[j]] = append(byW[p.mcW[j]], j)
		}
		for w := 0; w < workers; w++ {
			if mcs := byW[w]; len(mcs) > 0 {
				p.wLocalEdges[w] = append(p.wLocalEdges[w], localEdgePlan{edge: e, mcs: mcs})
			}
		}
	}

	// Exact per-worker incoming message counts per wave (channel capacity:
	// with every send buffered, workers can never deadlock on a send).
	p.fwdCap = make([]int, workers)
	p.bwdCap = make([]int, workers)
	for w := 0; w < workers; w++ {
		haloIn := 0
		if w > 0 {
			haloIn++
		}
		if w < workers-1 {
			haloIn++
		}
		syncFoldIn, syncBcastIn := 0, 0
		for _, g := range p.groups {
			if g.ownerW == w {
				syncFoldIn += len(g.workers) - 1
			} else if len(g.byWorker[w]) > 0 {
				syncBcastIn++
			}
		}
		edgeFoldIn := 0
		for _, j := range p.wMCs[w] {
			for _, e := range p.mcs[j].ownEdges {
				for _, rw := range p.edgeRefWorkers[e] {
					if rw != w {
						edgeFoldIn++
					}
				}
			}
		}
		edgeBcastIn := len(p.wEdgeSend[w])
		gradHaloIn := 0
		if w > 0 {
			last := p.wMCs[w-1][len(p.wMCs[w-1])-1]
			if p.mcs[last].extHi > p.wb[w] {
				gradHaloIn++
			}
		}
		if w < workers-1 {
			first := p.wMCs[w+1][0]
			if p.mcs[first].extLo < p.wb[w+1] {
				gradHaloIn++
			}
		}
		p.fwdCap[w] = layers * (haloIn + syncFoldIn + syncBcastIn + edgeFoldIn + edgeBcastIn)
		p.bwdCap[w] = layers*(syncFoldIn+syncBcastIn+edgeFoldIn+gradHaloIn) + (layers-1)*edgeBcastIn
	}
	return p, nil
}

// Message phases. Keys are unique per (phase, layer, id, sender).
const (
	phHalo int8 = iota
	phSyncFold
	phSyncBcast
	phEdgeFold
	phEdgeBcast
	phGradSyncFold
	phGradSyncBcast
	phGradKF
	phGradHalo
	phGradEdgeFold
)

// ShardKey identifies one exchange message: unique per (phase, layer, id,
// sender). It is the unit of addressing for both the in-process channel
// exchange and a remote transport (internal/dist serialises it verbatim),
// so a message produced on one side of a process boundary is matched by
// the same key on the other.
type ShardKey struct {
	Phase int8
	Layer int16
	ID    int32
	From  int8
}

type shardMsg struct {
	key  ShardKey
	data []float64
}

func mkey(phase int8, layer, id, from int) ShardKey {
	return ShardKey{Phase: phase, Layer: int16(layer), ID: int32(id), From: int8(from)}
}

// ShardLink carries one worker's cross-worker exchange messages when the
// shard workers do not share an address space. Send must deliver data to
// worker `to` under key; Recv must return the payload sent to this worker
// under key (stashing out-of-order arrivals internally). Payloads must be
// preserved bit-for-bit — the engine's bit-identity invariant survives
// serialisation only if the link does not renormalise floats. A returned
// error aborts the worker's wave cleanly (RunShardWorkerForward surfaces
// it); links should fail fast on peer death or deadline rather than block
// forever.
type ShardLink interface {
	Send(to int, key ShardKey, data []float64) error
	Recv(key ShardKey) ([]float64, error)
}

// shardLinkError unwinds a worker whose link failed (peer death, message
// deadline); RunShardWorkerForward converts it back into the link's error.
type shardLinkError struct{ err error }

// mcTape holds one µchunk's per-layer autograd tapes: the A1 tape
// (attention + node stream over the extended range) and, for owner
// µchunks, the A2 tape (edge fold + edge stream over owned edges).
type mcTape struct {
	hExt, eRep, kmod, hOutPre *tensor.Tensor
	kf, eOwn, eOut            *tensor.Tensor
}

// shardRun is the per-step mutable state of one Forward/Backward pair.
type shardRun struct {
	eng *ShardEngine

	// link, when non-nil, replaces the in-process channels: this run hosts
	// exactly one worker and every cross-worker message flows through the
	// link (a remote transport). The channel/stash fields are unused then.
	link ShardLink

	ch       []chan shardMsg
	stash    []map[ShardKey][]float64
	failed   chan struct{}
	failOnce sync.Once
	panicVal any

	hw        [][]float64 // per worker: extended h buffer [bufLo, bufHi)
	eLoc      [][]float64 // per µchunk: current e rows for localEdges
	finalH    []float64   // L×d final embeddings (disjoint worker writes)
	tapes     [][]mcTape  // [µchunk][layer]
	enc0h     []*tensor.Tensor
	enc0e     []*tensor.Tensor
	eGradSeed [][]float64 // per µchunk: d e(ℓ) rows for owned edges

	hFinalLeaf *tensor.Tensor

	haloMsgs, haloBytes       int64
	syncMsgs, syncBytes       int64
	edgeMsgs, edgeBytes       int64
	collectMsgs, collectBytes int64
	bwdMsgs, bwdBytes         int64
	fwdNs, bwdNs              []int64
}

func newShardRun(e *ShardEngine) *shardRun {
	p := e.plan
	r := &shardRun{
		eng:       e,
		ch:        make([]chan shardMsg, p.workers),
		stash:     make([]map[ShardKey][]float64, p.workers),
		failed:    make(chan struct{}),
		hw:        make([][]float64, p.workers),
		eLoc:      make([][]float64, shardChunks),
		finalH:    make([]float64, p.L*p.dim),
		tapes:     make([][]mcTape, shardChunks),
		enc0h:     make([]*tensor.Tensor, shardChunks),
		enc0e:     make([]*tensor.Tensor, shardChunks),
		eGradSeed: make([][]float64, shardChunks),
		fwdNs:     make([]int64, p.workers),
		bwdNs:     make([]int64, p.workers),
	}
	for w := 0; w < p.workers; w++ {
		cap := p.fwdCap[w]
		if p.bwdCap[w] > cap {
			cap = p.bwdCap[w]
		}
		r.ch[w] = make(chan shardMsg, cap)
		r.stash[w] = make(map[ShardKey][]float64)
		bufLo, bufHi := r.bufRange(w)
		r.hw[w] = make([]float64, (bufHi-bufLo)*p.dim)
	}
	for j := 0; j < shardChunks; j++ {
		mc := p.mcs[j]
		r.eLoc[j] = make([]float64, len(mc.localEdges)*p.dim)
		r.tapes[j] = make([]mcTape, p.layers)
		r.eGradSeed[j] = make([]float64, len(mc.ownEdges)*p.dim)
	}
	return r
}

// bufRange is worker w's extended h-buffer row range: its own rows plus ω
// halo rows on each interior side.
func (r *shardRun) bufRange(w int) (int, int) {
	p := r.eng.plan
	lo := p.wb[w] - p.omega
	if lo < 0 {
		lo = 0
	}
	hi := p.wb[w+1] + p.omega
	if hi > p.L {
		hi = p.L
	}
	return lo, hi
}

func (r *shardRun) send(to int, key ShardKey, data []float64, msgs, bytes *int64) {
	atomic.AddInt64(msgs, 1)
	atomic.AddInt64(bytes, int64(len(data)*8))
	if r.link != nil {
		if err := r.link.Send(to, key, data); err != nil {
			panic(&shardLinkError{err})
		}
		return
	}
	select {
	case r.ch[to] <- shardMsg{key: key, data: data}:
	case <-r.failed:
		panic(errShardAborted)
	}
}

func (r *shardRun) recv(w int, key ShardKey) []float64 {
	if r.link != nil {
		data, err := r.link.Recv(key)
		if err != nil {
			panic(&shardLinkError{err})
		}
		return data
	}
	if d, ok := r.stash[w][key]; ok {
		delete(r.stash[w], key)
		return d
	}
	for {
		select {
		case m := <-r.ch[w]:
			if m.key == key {
				return m.data
			}
			r.stash[w][m.key] = m.data
		case <-r.failed:
			panic(errShardAborted)
		}
	}
}

// guard times a worker wave and converts peer-abort panics into a clean
// exit; a genuine panic is recorded once and re-raised on the caller.
func (r *shardRun) guard(ns *int64) func() {
	start := time.Now()
	return func() {
		atomic.StoreInt64(ns, int64(time.Since(start)))
		if rec := recover(); rec != nil && rec != errShardAborted {
			r.failOnce.Do(func() {
				r.panicVal = rec
				close(r.failed)
			})
		}
	}
}

func (r *shardRun) rethrow() {
	if r.panicVal != nil {
		panic(r.panicVal)
	}
}

// Forward runs the sharded forward pass and returns the model output,
// bit-identical to m.Forward(ctx). The returned tensor heads the root tape
// (final embeddings → readout); calling loss.Backward() on a loss built
// from it seeds both the master readout gradients and the final-embedding
// gradients that Backward distributes to the workers.
func (e *ShardEngine) Forward() *tensor.Tensor {
	for _, ps := range e.repParams {
		for _, p := range ps {
			p.Grad = nil
		}
	}
	run := newShardRun(e)
	e.run = run
	// Best-effort budget accounting for the worker goroutines: nested
	// kernels still admit their own helpers through the same bucket.
	_, release := compute.Borrow(e.plan.workers - 1)
	var wg sync.WaitGroup
	for w := 0; w < e.plan.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer run.guard(&run.fwdNs[w])()
			run.workerForward(w)
		}(w)
	}
	wg.Wait()
	release()
	run.rethrow()

	// Root tape: exactly the single engine's readout arithmetic over the
	// collected final embeddings.
	ctx := e.ctx
	hFinal := tensor.New(e.plan.L, e.plan.dim, run.finalH).RequireGrad()
	run.hFinalLeaf = hFinal
	nodes := tensor.SegmentMean(hFinal, ctx.posToNode, ctx.numNodeSlots)
	pooled := tensor.SegmentMean(nodes, ctx.nodeGraph, ctx.NumGraphs)
	return e.model.readout.Forward(pooled)
}

// Backward runs the sharded backward pass (the caller must have run
// loss.Backward() on a loss derived from Forward's output first) and folds
// every µchunk replica's parameter gradients into the master parameters.
func (e *ShardEngine) Backward() {
	run := e.run
	if run == nil || run.hFinalLeaf == nil {
		panic("models: ShardEngine.Backward before Forward")
	}
	if run.hFinalLeaf.Grad == nil {
		run.hFinalLeaf.Grad = make([]float64, e.plan.L*e.plan.dim)
	}
	_, release := compute.Borrow(e.plan.workers - 1)
	var wg sync.WaitGroup
	for w := 0; w < e.plan.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer run.guard(&run.bwdNs[w])()
			run.workerBackward(w)
		}(w)
	}
	wg.Wait()
	release()
	run.rethrow()

	// Fold replica gradients into the masters, ascending µchunk, allocating
	// a master gradient only when some replica produced one — parameters
	// the loss cannot reach (the last layer's edge stream) keep nil grads,
	// so the optimiser skips them exactly as it does for the single engine.
	for pi, mp := range e.masterParams {
		for _, ps := range e.repParams {
			g := ps[pi].Grad
			if g == nil {
				continue
			}
			if mp.Grad == nil {
				mp.Grad = make([]float64, len(mp.Data))
			}
			for i := range g {
				mp.Grad[i] += g[i]
			}
		}
	}
}

// FinalEmbeddings returns the final-layer path embeddings (NumRows×dim,
// row-major) collected by the last Forward. The returned slice is the
// engine's buffer; callers must not mutate it.
func (e *ShardEngine) FinalEmbeddings() []float64 {
	if e.run == nil {
		return nil
	}
	return e.run.finalH
}

// WorkerBounds returns the worker row boundaries: worker w owns path rows
// [b[w], b[w+1]).
func (e *ShardEngine) WorkerBounds() []int {
	return append([]int(nil), e.plan.wb...)
}

// Stats reports the traffic and timing of the current run (valid after
// Forward returns; backward fields populate after Backward).
func (e *ShardEngine) Stats() ShardStats {
	r := e.run
	s := ShardStats{Workers: e.plan.workers}
	if r == nil {
		return s
	}
	s.HaloMessages = atomic.LoadInt64(&r.haloMsgs)
	s.HaloBytes = atomic.LoadInt64(&r.haloBytes)
	s.SyncMessages = atomic.LoadInt64(&r.syncMsgs)
	s.SyncBytes = atomic.LoadInt64(&r.syncBytes)
	s.EdgeMessages = atomic.LoadInt64(&r.edgeMsgs)
	s.EdgeBytes = atomic.LoadInt64(&r.edgeBytes)
	s.CollectMessages = atomic.LoadInt64(&r.collectMsgs)
	s.CollectBytes = atomic.LoadInt64(&r.collectBytes)
	s.BackwardMessages = atomic.LoadInt64(&r.bwdMsgs)
	s.BackwardBytes = atomic.LoadInt64(&r.bwdBytes)
	s.ForwardNs = append([]int64(nil), r.fwdNs...)
	s.BackwardNs = append([]int64(nil), r.bwdNs...)
	return s
}

// workerForward runs worker w's forward wave.
func (r *shardRun) workerForward(w int) {
	e := r.eng
	p := e.plan
	d := p.dim
	lo, hi := p.wb[w], p.wb[w+1]
	bufLo, _ := r.bufRange(w)
	hw := r.hw[w]
	row := func(rr int) []float64 {
		off := (rr - bufLo) * d
		return hw[off : off+d]
	}
	copyRows := func(a, b int) []float64 {
		out := make([]float64, (b-a)*d)
		copy(out, hw[(a-bufLo)*d:(b-bufLo)*d])
		return out
	}
	// hOutPre value of an own row in the current layer's tapes.
	preRow := func(rr, l int) []float64 {
		j := p.mcOfRow(rr)
		t := &r.tapes[j][l]
		off := (rr - p.mcs[j].extLo) * d
		return t.hOutPre.Data[off : off+d]
	}

	// Layer-1 inputs: encoder replicas over own rows / local edges.
	for _, j := range p.wMCs[w] {
		mc := p.mcs[j]
		rep := e.reps[j]
		hEnc := tensor.EmbedRows(rep.encNode.Table, mc.nodeIDs)
		r.enc0h[j] = hEnc
		copy(hw[(mc.lo-bufLo)*d:(mc.hi-bufLo)*d], hEnc.Data)
		eEnc := tensor.EmbedRows(rep.encEdge.Table, mc.edgeTypes)
		r.enc0e[j] = eEnc
		copy(r.eLoc[j], eEnc.Data)
	}

	for l := 0; l < p.layers; l++ {
		// Phase 1: dense ω-row halo exchange of the current embeddings.
		if w > 0 {
			r.send(w-1, mkey(phHalo, l, 0, w), copyRows(lo, lo+p.omega), &r.haloMsgs, &r.haloBytes)
		}
		if w < p.workers-1 {
			r.send(w+1, mkey(phHalo, l, 0, w), copyRows(hi-p.omega, hi), &r.haloMsgs, &r.haloBytes)
		}
		if w > 0 {
			copy(hw[(lo-p.omega-bufLo)*d:(lo-bufLo)*d], r.recv(w, mkey(phHalo, l, 0, w-1)))
		}
		if w < p.workers-1 {
			copy(hw[(hi-bufLo)*d:(hi+p.omega-bufLo)*d], r.recv(w, mkey(phHalo, l, 0, w+1)))
		}

		// Phase 2: A1 tape per µchunk — attention + node stream over the
		// extended range. Halo-row outputs are garbage and discarded; every
		// op is row-local so they cannot contaminate own rows.
		for _, j := range p.wMCs[w] {
			mc := p.mcs[j]
			ext := make([]float64, (mc.extHi-mc.extLo)*d)
			copy(ext, hw[(mc.extLo-bufLo)*d:(mc.extHi-bufLo)*d])
			hExt := tensor.New(mc.extHi-mc.extLo, d, ext).RequireGrad()
			eRep := tensor.New(len(mc.localEdges), d, append([]float64(nil), r.eLoc[j]...)).RequireGrad()
			lay := e.reps[j].layers[l]
			att, kmod := lay.forwardAttnStaged(mc.lctx, hExt, eRep, p.heads)
			hOutPre := lay.nodeStream(mc.lctx, hExt, att)
			t := &r.tapes[j][l]
			t.hExt, t.eRep, t.kmod, t.hOutPre = hExt, eRep, kmod, hOutPre
		}

		// Phase 3: duplicate-group synchronisation → h(ℓ+1) own rows.
		// Owners fold RAW member rows ascending global row from a zero
		// base and broadcast the mean — SegmentMean's exact arithmetic.
		for gi, g := range p.groups {
			if g.ownerW == w {
				continue
			}
			mine := g.byWorker[w]
			if len(mine) == 0 {
				continue
			}
			data := make([]float64, len(mine)*d)
			for i, rr := range mine {
				copy(data[i*d:(i+1)*d], preRow(int(rr), l))
			}
			r.send(g.ownerW, mkey(phSyncFold, l, gi, w), data, &r.syncMsgs, &r.syncBytes)
		}
		for gi, g := range p.groups {
			if g.ownerW != w {
				continue
			}
			remote := make(map[int][]float64)
			used := make(map[int]int)
			for _, ow := range g.workers {
				if ow != w {
					remote[ow] = r.recv(w, mkey(phSyncFold, l, gi, ow))
				}
			}
			mean := make([]float64, d)
			for _, rr := range g.members {
				var src []float64
				if mw := p.wOfRow(int(rr)); mw == w {
					src = preRow(int(rr), l)
				} else {
					i := used[mw]
					src = remote[mw][i*d : (i+1)*d]
					used[mw] = i + 1
				}
				for c := 0; c < d; c++ {
					mean[c] += src[c]
				}
			}
			for c := range mean {
				mean[c] *= g.inv
			}
			for _, ow := range g.workers {
				if ow != w {
					r.send(ow, mkey(phSyncBcast, l, gi, w),
						append([]float64(nil), mean...), &r.syncMsgs, &r.syncBytes)
				}
			}
			for _, rr := range g.byWorker[w] {
				copy(row(int(rr)), mean)
			}
		}
		for gi, g := range p.groups {
			if g.ownerW == w || len(g.byWorker[w]) == 0 {
				continue
			}
			mean := r.recv(w, mkey(phSyncBcast, l, gi, g.ownerW))
			for _, rr := range g.byWorker[w] {
				copy(row(int(rr)), mean)
			}
		}
		for rr := lo; rr < hi; rr++ {
			if p.rowGroup[rr] >= 0 {
				continue
			}
			src := preRow(rr, l)
			dst := row(rr)
			if p.syncActive {
				// Mirror SegmentMean+Gather on a singleton segment: the
				// zero-base add flushes -0.0 to +0.0 exactly as the kernel
				// does; ×1.0 is the count-1 mean.
				for c := 0; c < d; c++ {
					s := 0.0 + src[c]
					dst[c] = s * 1.0
				}
			} else {
				copy(dst, src)
			}
		}

		// Phase 4: edge fold — referencing workers ship RAW k⊙ê pair rows
		// to each edge's owner, ascending global pair id.
		for _, ef := range p.wEdgeSend[w] {
			data := make([]float64, len(ef.pairs)*d)
			for i, pp := range ef.pairs {
				j, rw := int(p.pairMC[pp]), int(p.pairRow[pp])
				copy(data[i*d:(i+1)*d], r.tapes[j][l].kmod.Data[rw*d:(rw+1)*d])
			}
			r.send(ef.ownerW, mkey(phEdgeFold, l, int(ef.edge), w), data, &r.edgeMsgs, &r.edgeBytes)
		}
		// Phase 5: A2 tape per owner µchunk — assemble the fold matrix in
		// ascending global pair order, SegmentMean per owned edge (the
		// single engine's EdgeMean bit for bit), then the edge stream.
		for _, j := range p.wMCs[w] {
			mc := p.mcs[j]
			if len(mc.ownEdges) == 0 {
				continue
			}
			kf := make([]float64, len(mc.foldPairs)*d)
			remote := make(map[[2]int32][]float64)
			used := make(map[[2]int32]int)
			for i, pp := range mc.foldPairs {
				srcMC := int(p.pairMC[pp])
				if srcW := p.mcW[srcMC]; srcW == w {
					rw := int(p.pairRow[pp])
					copy(kf[i*d:(i+1)*d], r.tapes[srcMC][l].kmod.Data[rw*d:(rw+1)*d])
				} else {
					e := p.edgeIdx[pp]
					rk := [2]int32{e, int32(srcW)}
					data, ok := remote[rk]
					if !ok {
						data = r.recv(w, mkey(phEdgeFold, l, int(e), srcW))
						remote[rk] = data
					}
					ui := used[rk]
					copy(kf[i*d:(i+1)*d], data[ui*d:(ui+1)*d])
					used[rk] = ui + 1
				}
			}
			kfLeaf := tensor.New(len(mc.foldPairs), d, kf).RequireGrad()
			eAvg := tensor.SegmentMean(kfLeaf, mc.foldSeg, len(mc.ownEdges))
			eOwnData := make([]float64, len(mc.ownEdges)*d)
			for i, ee := range mc.ownEdges {
				li := mc.edgeLocal[ee]
				copy(eOwnData[i*d:(i+1)*d], r.eLoc[j][li*d:(li+1)*d])
			}
			eOwn := tensor.New(len(mc.ownEdges), d, eOwnData).RequireGrad()
			eOut := e.reps[j].layers[l].edgeStream(&Context{}, eOwn, eAvg)
			t := &r.tapes[j][l]
			t.kf, t.eOwn, t.eOut = kfLeaf, eOwn, eOut
		}
		// Phase 6: broadcast owned-edge outputs to referencing workers and
		// refresh every local edge table for the next layer.
		for _, j := range p.wMCs[w] {
			mc := p.mcs[j]
			for oi, ee := range mc.ownEdges {
				for _, rw := range p.edgeRefWorkers[ee] {
					if rw == w {
						continue
					}
					out := r.tapes[j][l].eOut.Data[oi*d : (oi+1)*d]
					r.send(rw, mkey(phEdgeBcast, l, int(ee), w),
						append([]float64(nil), out...), &r.edgeMsgs, &r.edgeBytes)
				}
			}
		}
		for _, le := range p.wLocalEdges[w] {
			jo := int(p.edgeOwner[le.edge])
			var src []float64
			if ow := p.mcW[jo]; ow == w {
				oi := -1
				for i, ee := range p.mcs[jo].ownEdges {
					if ee == le.edge {
						oi = i
						break
					}
				}
				src = r.tapes[jo][l].eOut.Data[oi*d : (oi+1)*d]
			} else {
				src = r.recv(w, mkey(phEdgeBcast, l, int(le.edge), ow))
			}
			for _, j := range le.mcs {
				li := p.mcs[j].edgeLocal[le.edge]
				copy(r.eLoc[j][li*d:(li+1)*d], src)
			}
		}
	}

	// Collect: final own rows into the shared output buffer.
	copy(r.finalH[lo*d:hi*d], hw[(lo-bufLo)*d:(hi-bufLo)*d])
	atomic.AddInt64(&r.collectMsgs, 1)
	atomic.AddInt64(&r.collectBytes, int64((hi-lo)*d*8))
}

// gradRows returns t.Grad, or a shared zero buffer when the tape never
// reached t (read-only use).
func gradRows(t *tensor.Tensor) []float64 {
	if t.Grad != nil {
		return t.Grad
	}
	return make([]float64, t.Size())
}

// workerBackward runs worker w's backward wave, mirroring the forward
// phases in reverse with the same owner/raw-row fold discipline.
func (r *shardRun) workerBackward(w int) {
	e := r.eng
	p := e.plan
	d := p.dim
	layers := p.layers
	lo, hi := p.wb[w], p.wb[w+1]
	n := hi - lo

	// gNext holds ∂loss/∂h(ℓ+1) for own rows (post-sync embeddings).
	gNext := make([]float64, n*d)
	copy(gNext, r.hFinalLeaf.Grad[lo*d:hi*d])
	gPre := make([]float64, n*d)

	for l := layers - 1; l >= 0; l-- {
		// Phase 1: duplicate-sync backward — owner folds RAW member grad
		// rows ascending from zero, broadcasts the node grad, every member
		// row gets gnode·inv (GatherRows∘SegmentMean backward, exactly).
		for gi, g := range p.groups {
			if g.ownerW == w {
				continue
			}
			mine := g.byWorker[w]
			if len(mine) == 0 {
				continue
			}
			data := make([]float64, len(mine)*d)
			for i, rr := range mine {
				copy(data[i*d:(i+1)*d], gNext[(int(rr)-lo)*d:(int(rr)-lo+1)*d])
			}
			r.send(g.ownerW, mkey(phGradSyncFold, l, gi, w), data, &r.bwdMsgs, &r.bwdBytes)
		}
		gnodes := make(map[int][]float64)
		for gi, g := range p.groups {
			if g.ownerW != w {
				continue
			}
			remote := make(map[int][]float64)
			used := make(map[int]int)
			for _, ow := range g.workers {
				if ow != w {
					remote[ow] = r.recv(w, mkey(phGradSyncFold, l, gi, ow))
				}
			}
			gnode := make([]float64, d)
			for _, rr := range g.members {
				var src []float64
				if mw := p.wOfRow(int(rr)); mw == w {
					src = gNext[(int(rr)-lo)*d : (int(rr)-lo+1)*d]
				} else {
					i := used[mw]
					src = remote[mw][i*d : (i+1)*d]
					used[mw] = i + 1
				}
				for c := 0; c < d; c++ {
					gnode[c] += src[c]
				}
			}
			for _, ow := range g.workers {
				if ow != w {
					r.send(ow, mkey(phGradSyncBcast, l, gi, w),
						append([]float64(nil), gnode...), &r.bwdMsgs, &r.bwdBytes)
				}
			}
			gnodes[gi] = gnode
		}
		for gi, g := range p.groups {
			if len(g.byWorker[w]) == 0 {
				continue
			}
			gnode := gnodes[gi]
			if gnode == nil {
				gnode = r.recv(w, mkey(phGradSyncBcast, l, gi, g.ownerW))
			}
			for _, rr := range g.byWorker[w] {
				dst := gPre[(int(rr)-lo)*d : (int(rr)-lo+1)*d]
				for c := 0; c < d; c++ {
					dst[c] = 0.0 + gnode[c]*g.inv
				}
			}
		}
		for rr := lo; rr < hi; rr++ {
			if p.rowGroup[rr] >= 0 {
				continue
			}
			src := gNext[(rr-lo)*d : (rr-lo+1)*d]
			dst := gPre[(rr-lo)*d : (rr-lo+1)*d]
			if p.syncActive {
				for c := 0; c < d; c++ {
					s := 0.0 + src[c]
					dst[c] = 0.0 + s*1.0
				}
			} else {
				copy(dst, src)
			}
		}

		// Phase 2: A2 backward (skipped at the last layer, whose edge
		// stream the loss cannot reach — matching the single engine, where
		// those parameters receive no gradient), then route the fold-matrix
		// grads back to each pair's µchunk as kmod pre-seeds.
		if l < layers-1 {
			for _, j := range p.wMCs[w] {
				mc := p.mcs[j]
				if len(mc.ownEdges) == 0 {
					continue
				}
				t := &r.tapes[j][l]
				t.eOut.Grad = append([]float64(nil), r.eGradSeed[j]...)
				tensor.BackwardFrom(t.eOut)
				kfGrad := gradRows(t.kf)
				type route struct {
					rows []float64
				}
				pend := make(map[[2]int32]*route)
				var order [][2]int32
				for i, pp := range mc.foldPairs {
					srcMC := int(p.pairMC[pp])
					grow := kfGrad[i*d : (i+1)*d]
					if srcW := p.mcW[srcMC]; srcW == w {
						kmod := r.tapes[srcMC][l].kmod
						if kmod.Grad == nil {
							kmod.Grad = make([]float64, kmod.Size())
						}
						rw := int(p.pairRow[pp])
						dst := kmod.Grad[rw*d : (rw+1)*d]
						for c := 0; c < d; c++ {
							dst[c] += grow[c]
						}
					} else {
						rk := [2]int32{p.edgeIdx[pp], int32(srcW)}
						rt := pend[rk]
						if rt == nil {
							rt = &route{}
							pend[rk] = rt
							order = append(order, rk)
						}
						rt.rows = append(rt.rows, grow...)
					}
				}
				for _, rk := range order {
					r.send(int(rk[1]), mkey(phGradKF, l, int(rk[0]), w),
						pend[rk].rows, &r.bwdMsgs, &r.bwdBytes)
				}
			}
			for _, ef := range p.wEdgeSend[w] {
				data := r.recv(w, mkey(phGradKF, l, int(ef.edge), ef.ownerW))
				for i, pp := range ef.pairs {
					j, rw := int(p.pairMC[pp]), int(p.pairRow[pp])
					kmod := r.tapes[j][l].kmod
					if kmod.Grad == nil {
						kmod.Grad = make([]float64, kmod.Size())
					}
					dst := kmod.Grad[rw*d : (rw+1)*d]
					for c := 0; c < d; c++ {
						dst[c] += data[i*d+c]
					}
				}
			}
		}

		// Phase 3: A1 backward per µchunk, with kmod pre-seeded.
		for _, j := range p.wMCs[w] {
			mc := p.mcs[j]
			t := &r.tapes[j][l]
			t.hOutPre.Grad = make([]float64, t.hOutPre.Size())
			copy(t.hOutPre.Grad[(mc.lo-mc.extLo)*d:(mc.hi-mc.extLo)*d], gPre[(mc.lo-lo)*d:(mc.hi-lo)*d])
			tensor.BackwardFrom(t.hOutPre)
		}

		// Phase 4: halo-gradient exchange over the ACTUAL extended ranges
		// (never dense ω rows — structural zeros would flip -0.0 signs),
		// then fold h(ℓ) grads per own row, ascending contributing µchunk.
		if w > 0 {
			mc := p.mcs[p.wMCs[w][0]]
			if mc.extLo < lo {
				g := gradRows(r.tapes[mc.j][l].hExt)
				r.send(w-1, mkey(phGradHalo, l, 0, w),
					append([]float64(nil), g[:(lo-mc.extLo)*d]...), &r.bwdMsgs, &r.bwdBytes)
			}
		}
		if w < p.workers-1 {
			mc := p.mcs[p.wMCs[w][len(p.wMCs[w])-1]]
			if mc.extHi > hi {
				g := gradRows(r.tapes[mc.j][l].hExt)
				off := (hi - mc.extLo) * d
				r.send(w+1, mkey(phGradHalo, l, 0, w),
					append([]float64(nil), g[off:off+(mc.extHi-hi)*d]...), &r.bwdMsgs, &r.bwdBytes)
			}
		}
		var fromLeft, fromRight []float64
		if w > 0 {
			last := p.wMCs[w-1][len(p.wMCs[w-1])-1]
			if p.mcs[last].extHi > lo {
				fromLeft = r.recv(w, mkey(phGradHalo, l, 0, w-1)) // rows [lo, extHi(last))
			}
		}
		var rightBase int
		if w < p.workers-1 {
			first := p.wMCs[w+1][0]
			if p.mcs[first].extLo < hi {
				fromRight = r.recv(w, mkey(phGradHalo, l, 0, w+1)) // rows [extLo(first), hi)
				rightBase = p.mcs[first].extLo
			}
		}
		gH := make([]float64, n*d)
		for rr := lo; rr < hi; rr++ {
			j := p.mcOfRow(rr)
			dst := gH[(rr-lo)*d : (rr-lo+1)*d]
			for _, jq := range [3]int{j - 1, j, j + 1} {
				if jq < 0 || jq >= shardChunks {
					continue
				}
				mq := p.mcs[jq]
				if rr < mq.extLo || rr >= mq.extHi {
					continue
				}
				var src []float64
				switch {
				case p.mcW[jq] == w:
					src = gradRows(r.tapes[jq][l].hExt)[(rr-mq.extLo)*d:]
				case jq < j:
					src = fromLeft[(rr-lo)*d:]
				default:
					src = fromRight[(rr-rightBase)*d:]
				}
				for c := 0; c < d; c++ {
					dst[c] += src[c]
				}
			}
		}

		// Phase 5: edge-gradient fold — referencing µchunks' feature-grad
		// rows ascending µchunk, then the owner's A2 residual contribution,
		// seeding the previous layer's edge stream (or the encoder at ℓ=1).
		for _, eg := range p.wEdgeGradSend[w] {
			data := make([]float64, len(eg.mcs)*d)
			for i, j := range eg.mcs {
				li := p.mcs[j].edgeLocal[eg.edge]
				g := gradRows(r.tapes[j][l].eRep)
				copy(data[i*d:(i+1)*d], g[li*d:(li+1)*d])
			}
			r.send(eg.ownerW, mkey(phGradEdgeFold, l, int(eg.edge), w), data, &r.bwdMsgs, &r.bwdBytes)
		}
		for _, j := range p.wMCs[w] {
			mc := p.mcs[j]
			seed := r.eGradSeed[j]
			for i := range seed {
				seed[i] = 0
			}
			remote := make(map[[2]int32][]float64)
			used := make(map[[2]int32]int)
			for oi, ee := range mc.ownEdges {
				dst := seed[oi*d : (oi+1)*d]
				for _, jq := range p.edgeRefMCs[ee] {
					var src []float64
					if wq := p.mcW[jq]; wq == w {
						li := p.mcs[jq].edgeLocal[ee]
						src = gradRows(r.tapes[jq][l].eRep)[li*d:]
					} else {
						rk := [2]int32{ee, int32(wq)}
						data, ok := remote[rk]
						if !ok {
							data = r.recv(w, mkey(phGradEdgeFold, l, int(ee), wq))
							remote[rk] = data
						}
						ui := used[rk]
						src = data[ui*d:]
						used[rk] = ui + 1
					}
					for c := 0; c < d; c++ {
						dst[c] += src[c]
					}
				}
				if l < layers-1 && len(mc.ownEdges) > 0 {
					src := gradRows(r.tapes[j][l].eOwn)[oi*d:]
					for c := 0; c < d; c++ {
						dst[c] += src[c]
					}
				}
			}
		}

		gNext, gH = gH, gNext
		_ = gH
	}

	// Encoder backward: gNext now carries ∂loss/∂h(1); the edge seeds
	// carry ∂loss/∂e(1) at each owner µchunk.
	for _, j := range p.wMCs[w] {
		mc := p.mcs[j]
		hEnc := r.enc0h[j]
		hEnc.Grad = append([]float64(nil), gNext[(mc.lo-lo)*d:(mc.hi-lo)*d]...)
		tensor.BackwardFrom(hEnc)
		eEnc := r.enc0e[j]
		eEnc.Grad = make([]float64, eEnc.Size())
		for oi, ee := range mc.ownEdges {
			li := mc.edgeLocal[ee]
			copy(eEnc.Grad[li*d:(li+1)*d], r.eGradSeed[j][oi*d:(oi+1)*d])
		}
		tensor.BackwardFrom(eEnc)
	}
}

// ShardWorkerResult is one worker's share of a distributed forward: its
// owned final-embedding rows and the traffic it originated (send-side
// counters only, so summing the k results reproduces the in-process
// engine's totals exactly).
type ShardWorkerResult struct {
	Lo, Hi  int       // owned path-row range [Lo, Hi)
	PathLen int       // total path rows L across all workers
	Rows    []float64 // (Hi-Lo)×dim row-major final embeddings
	Stats   ShardStats
}

// RunShardWorkerForward runs worker w's forward wave of a k-worker shard
// plan in this process, exchanging cross-worker messages over link. It is
// the process-boundary counterpart of ShardEngine.Forward: when every
// worker of the plan runs somewhere (any mix of processes) over a link
// that preserves payload bits, the concatenated Rows are bit-identical to
// the in-process engine's final embeddings, and ReadoutFromFinal on the
// assembled rows reproduces m.Forward(ctx) exactly.
//
// A link error (peer death, deadline) aborts the wave and is returned;
// any other panic inside the wave is also converted to an error so a
// malformed job cannot kill a worker process.
func RunShardWorkerForward(m *GT, ctx *Context, workers, w int, link ShardLink) (ShardWorkerResult, error) {
	if w < 0 || w >= workers {
		return ShardWorkerResult{}, fmt.Errorf("models: shard worker index %d out of range [0,%d)", w, workers)
	}
	eng, err := NewShardEngine(m, ctx, workers)
	if err != nil {
		return ShardWorkerResult{}, err
	}
	run := newShardRun(eng)
	run.link = link
	eng.run = run
	err = func() (err error) {
		defer func() {
			if rec := recover(); rec != nil {
				if le, ok := rec.(*shardLinkError); ok {
					err = le.err
				} else {
					err = fmt.Errorf("models: shard worker %d/%d panicked: %v", w, workers, rec)
				}
			}
		}()
		start := time.Now()
		run.workerForward(w)
		atomic.StoreInt64(&run.fwdNs[w], int64(time.Since(start)))
		return nil
	}()
	if err != nil {
		return ShardWorkerResult{}, err
	}
	lo, hi := eng.plan.wb[w], eng.plan.wb[w+1]
	d := eng.plan.dim
	return ShardWorkerResult{
		Lo:      lo,
		Hi:      hi,
		PathLen: eng.plan.L,
		Rows:    append([]float64(nil), run.finalH[lo*d:hi*d]...),
		Stats:   eng.Stats(),
	}, nil
}

// ReadoutFromFinal applies the readout tail — SegmentMean over node slots,
// SegmentMean over member graphs, readout head — to externally assembled
// final embeddings (NumRows×dim row-major). It is exactly the root tape of
// ShardEngine.Forward, so feeding it the rows collected from a distributed
// run yields output bit-identical to m.Forward(ctx).
func (m *GT) ReadoutFromFinal(ctx *Context, finalH []float64) (*tensor.Tensor, error) {
	if ctx.posToNode == nil {
		return nil, fmt.Errorf("%w: readout tail requires a MEGA context", ErrUnshardable)
	}
	if len(finalH) != ctx.NumRows*m.cfg.Dim {
		return nil, fmt.Errorf("models: final embeddings have %d values, want %d×%d",
			len(finalH), ctx.NumRows, m.cfg.Dim)
	}
	hFinal := tensor.New(ctx.NumRows, m.cfg.Dim, finalH)
	nodes := tensor.SegmentMean(hFinal, ctx.posToNode, ctx.numNodeSlots)
	pooled := tensor.SegmentMean(nodes, ctx.nodeGraph, ctx.NumGraphs)
	return m.readout.Forward(pooled), nil
}
