package models

import (
	"math"
	"testing"

	"mega/internal/tensor"
	"mega/internal/traverse"
)

// shardTestSetup builds a MEGA context plus a fresh GT over it. The small
// window keeps every chunk wider than ω at 8 µchunks.
func shardTestSetup(t *testing.T, nInst int) (*GT, *Context) {
	t.Helper()
	insts := testInstances(t, nInst)
	ctx, err := NewMegaContext(insts, MegaOptions{
		Traverse: traverse.Options{Window: 2},
	}, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	return NewGT(smallConfig()), ctx
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestShardForwardBitIdentical pins the engine's core contract: the sharded
// forward produces the model output bit for bit at every worker count.
func TestShardForwardBitIdentical(t *testing.T) {
	m, ctx := shardTestSetup(t, 6)
	want := m.Forward(ctx)
	for _, k := range []int{1, 2, 4, 8} {
		eng, err := NewShardEngine(m, ctx, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		got := eng.Forward()
		if !bitsEqual(got.Data, want.Data) {
			t.Errorf("k=%d: sharded output differs from single engine", k)
		}
	}
}

// TestShardBackwardBitIdentical pins the gradient contract: parameter
// gradients are bit-identical at every worker count. The engine always
// decomposes into the 8 canonical µchunks regardless of k, so every
// accumulation order is worker-count-invariant; the k=1 run is the
// reference. (Gradients legitimately differ from the monolithic single
// engine, whose one big tape accumulates in a different — equally valid —
// order; forward values are bit-identical to it, see above.)
func TestShardBackwardBitIdentical(t *testing.T) {
	m, ctx := shardTestSetup(t, 6)
	params := m.Params()

	ref, err := NewShardEngine(m, ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := ref.Forward()
	tensor.MAELoss(out, ctx.Targets).Backward()
	ref.Backward()
	want := make([][]float64, len(params))
	for i, p := range params {
		if p.Grad != nil {
			want[i] = append([]float64(nil), p.Grad...)
		}
		p.Grad = nil
	}

	for _, k := range []int{2, 4, 8} {
		eng, err := NewShardEngine(m, ctx, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		sOut := eng.Forward()
		tensor.MAELoss(sOut, ctx.Targets).Backward()
		eng.Backward()
		for i, p := range params {
			switch {
			case want[i] == nil && p.Grad != nil:
				t.Fatalf("k=%d: param %d gained a gradient the single engine lacks", k, i)
			case want[i] != nil && p.Grad == nil:
				t.Fatalf("k=%d: param %d missing its gradient", k, i)
			case want[i] != nil && !bitsEqual(p.Grad, want[i]):
				t.Fatalf("k=%d: param %d gradient differs from single engine", k, i)
			}
			p.Grad = nil
		}
	}
}

// TestShardHaloTraffic pins the boundary exchange: 2(k-1) halo messages of
// ω·dim·8 bytes per layer, and zero inter-worker traffic at k=1.
func TestShardHaloTraffic(t *testing.T) {
	m, ctx := shardTestSetup(t, 6)
	layers := len(m.layers)
	for _, k := range []int{1, 2, 4, 8} {
		eng, err := NewShardEngine(m, ctx, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		eng.Forward()
		st := eng.Stats()
		wantMsgs := int64(layers * 2 * (k - 1))
		if st.HaloMessages != wantMsgs {
			t.Errorf("k=%d: halo messages = %d, want %d", k, st.HaloMessages, wantMsgs)
		}
		omega := eng.plan.omega
		if wantBytes := wantMsgs * int64(omega*eng.plan.dim*8); st.HaloBytes != wantBytes {
			t.Errorf("k=%d: halo bytes = %d, want %d", k, st.HaloBytes, wantBytes)
		}
		if k == 1 && st.ForwardMessages() != 0 {
			t.Errorf("k=1: expected zero exchange traffic, got %d messages", st.ForwardMessages())
		}
		if st.CollectMessages != int64(k) {
			t.Errorf("k=%d: collect messages = %d, want %d", k, st.CollectMessages, k)
		}
	}
}

// TestShardEngineRejectsInvalid covers the planner's validation paths.
func TestShardEngineRejectsInvalid(t *testing.T) {
	m, ctx := shardTestSetup(t, 6)
	for _, k := range []int{0, 3, 5, 16} {
		if _, err := NewShardEngine(m, ctx, k); err == nil {
			t.Errorf("k=%d: expected error", k)
		}
	}
	dglCtx, err := NewDGLContext(testInstances(t, 2), nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewShardEngine(m, dglCtx, 2); err == nil {
		t.Error("expected error for non-MEGA context")
	}
}

// TestShardReusableAcrossSteps runs two optimisation-free steps through the
// same engine to confirm per-run state fully resets.
func TestShardReusableAcrossSteps(t *testing.T) {
	m, ctx := shardTestSetup(t, 4)
	eng, err := NewShardEngine(m, ctx, 4)
	if err != nil {
		t.Fatal(err)
	}
	first := eng.Forward()
	firstData := append([]float64(nil), first.Data...)
	tensor.MAELoss(first, ctx.Targets).Backward()
	eng.Backward()
	for _, p := range m.Params() {
		p.Grad = nil
	}
	second := eng.Forward()
	if !bitsEqual(second.Data, firstData) {
		t.Error("second forward over unchanged parameters differs from first")
	}
}
