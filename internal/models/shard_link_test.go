package models

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

// chanLink is a minimal in-process ShardLink: one mailbox per worker, every
// worker holds the same mailbox table. It exercises exactly the code path a
// remote transport uses (link-routed send/recv, per-worker runs in separate
// engine instances) without a process boundary.
type chanLink struct {
	self  int
	boxes []chan shardMsg
	stash map[ShardKey][]float64
}

func newChanLinks(k int) []*chanLink {
	boxes := make([]chan shardMsg, k)
	for i := range boxes {
		boxes[i] = make(chan shardMsg, 1<<14)
	}
	links := make([]*chanLink, k)
	for i := range links {
		links[i] = &chanLink{self: i, boxes: boxes, stash: make(map[ShardKey][]float64)}
	}
	return links
}

func (l *chanLink) Send(to int, key ShardKey, data []float64) error {
	select {
	case l.boxes[to] <- shardMsg{key: key, data: data}:
		return nil
	default:
		return errors.New("chanLink: mailbox full")
	}
}

func (l *chanLink) Recv(key ShardKey) ([]float64, error) {
	if d, ok := l.stash[key]; ok {
		delete(l.stash, key)
		return d, nil
	}
	for m := range l.boxes[l.self] {
		if m.key == key {
			return m.data, nil
		}
		l.stash[m.key] = m.data
	}
	return nil, errors.New("chanLink: closed")
}

// failLink errors on the first Send to prove link failures surface as
// errors, not panics or hangs.
type failLink struct{}

func (failLink) Send(int, ShardKey, []float64) error {
	return errors.New("failLink: injected send failure")
}
func (failLink) Recv(ShardKey) ([]float64, error) {
	return nil, errors.New("failLink: injected recv failure")
}

// TestShardWorkerForwardOverLink pins the distribution contract: k
// independent RunShardWorkerForward calls — each building its own engine,
// talking only through a ShardLink — assemble final embeddings and a
// readout bit-identical to m.Forward(ctx), and their summed send-side
// traffic equals the in-process engine's totals.
func TestShardWorkerForwardOverLink(t *testing.T) {
	m, ctx := shardTestSetup(t, 6)
	want := m.Forward(ctx)

	ref, err := NewShardEngine(m, ctx, 4)
	if err != nil {
		t.Fatal(err)
	}
	ref.Forward()
	refStats := ref.Stats()

	for _, k := range []int{1, 2, 4, 8} {
		links := newChanLinks(k)
		results := make([]ShardWorkerResult, k)
		errs := make([]error, k)
		var wg sync.WaitGroup
		for w := 0; w < k; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				results[w], errs[w] = RunShardWorkerForward(m, ctx, k, w, links[w])
			}(w)
		}
		wg.Wait()
		for w, e := range errs {
			if e != nil {
				t.Fatalf("k=%d worker %d: %v", k, w, e)
			}
		}

		finalH := make([]float64, ctx.NumRows*m.cfg.Dim)
		var msgs, bytes int64
		for _, res := range results {
			copy(finalH[res.Lo*m.cfg.Dim:res.Hi*m.cfg.Dim], res.Rows)
			msgs += res.Stats.ForwardMessages()
			bytes += res.Stats.ForwardBytes()
		}
		got, err := m.ReadoutFromFinal(ctx, finalH)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !bitsEqual(got.Data, want.Data) {
			t.Errorf("k=%d: link-distributed output differs from m.Forward", k)
		}
		if k == 4 {
			if msgs != refStats.ForwardMessages() || bytes != refStats.ForwardBytes() {
				t.Errorf("k=4: summed link traffic %d msgs/%d B, in-process engine %d/%d",
					msgs, bytes, refStats.ForwardMessages(), refStats.ForwardBytes())
			}
		}
	}
}

// TestShardWorkerForwardLinkError pins failure semantics: a broken link
// yields an error (carrying the link's message), never a panic.
func TestShardWorkerForwardLinkError(t *testing.T) {
	m, ctx := shardTestSetup(t, 6)
	_, err := RunShardWorkerForward(m, ctx, 2, 0, failLink{})
	if err == nil {
		t.Fatal("expected error from failing link")
	}
	if want := "injected send failure"; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not mention %q", err, want)
	}
	if _, err := RunShardWorkerForward(m, ctx, 2, 5, nil); err == nil {
		t.Error("expected error for out-of-range worker index")
	}
}

// TestReadoutFromFinalMatchesEngine pins the root-tape tail against the
// in-process engine's own collection.
func TestReadoutFromFinalMatchesEngine(t *testing.T) {
	m, ctx := shardTestSetup(t, 4)
	eng, err := NewShardEngine(m, ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := eng.Forward()
	got, err := m.ReadoutFromFinal(ctx, eng.FinalEmbeddings())
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(got.Data, want.Data) {
		t.Error("ReadoutFromFinal differs from ShardEngine.Forward")
	}
	if _, err := m.ReadoutFromFinal(ctx, make([]float64, 3)); err == nil {
		t.Error("expected length-mismatch error")
	}
}

// TestErrUnshardableClassification pins which constructor failures are
// structural (ErrUnshardable — fall back / don't retry) and which are
// configuration errors.
func TestErrUnshardableClassification(t *testing.T) {
	m, ctx := shardTestSetup(t, 6)
	if _, err := NewShardEngine(m, &Context{NumRows: 4}, 2); !errors.Is(err, ErrUnshardable) {
		t.Errorf("non-MEGA context: got %v, want ErrUnshardable", err)
	}
	if _, err := NewShardEngine(m, ctx, 3); err == nil {
		t.Error("expected error for k=3")
	} else if errors.Is(err, ErrUnshardable) {
		t.Error("worker-count mismatch must not be ErrUnshardable")
	}
}
