package datasets

import (
	"math"
	"testing"

	"mega/internal/graph"
)

// smallCfg keeps generation fast in tests.
func smallCfg(seed int64) Config {
	return Config{TrainSize: 40, ValSize: 10, TestSize: 10, Seed: seed}
}

func TestGenerateKnownNames(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			d, err := Generate(name, smallCfg(1))
			if err != nil {
				t.Fatalf("Generate(%q): %v", name, err)
			}
			if d.Name != name {
				t.Errorf("Name = %q", d.Name)
			}
			if len(d.Train) != 40 || len(d.Val) != 10 || len(d.Test) != 10 {
				t.Errorf("split sizes = %d/%d/%d", len(d.Train), len(d.Val), len(d.Test))
			}
			for i, inst := range d.All() {
				if inst.G == nil {
					t.Fatalf("instance %d has nil graph", i)
				}
				if len(inst.NodeFeat) != inst.G.NumNodes() {
					t.Fatalf("instance %d: %d node features for %d nodes", i, len(inst.NodeFeat), inst.G.NumNodes())
				}
				if len(inst.EdgeFeat) != inst.G.NumEdges() {
					t.Fatalf("instance %d: %d edge features for %d edges", i, len(inst.EdgeFeat), inst.G.NumEdges())
				}
				for _, f := range inst.NodeFeat {
					if int(f) < 0 || int(f) >= d.NumNodeTypes {
						t.Fatalf("instance %d: node feature %d out of [0,%d)", i, f, d.NumNodeTypes)
					}
				}
				for _, f := range inst.EdgeFeat {
					if int(f) < 0 || int(f) >= d.NumEdgeTypes {
						t.Fatalf("instance %d: edge feature %d out of [0,%d)", i, f, d.NumEdgeTypes)
					}
				}
			}
		})
	}
}

func TestGenerateUnknownName(t *testing.T) {
	if _, err := Generate("IMDB", smallCfg(1)); err == nil {
		t.Error("unknown dataset should error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate("ZINC", smallCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate("ZINC", smallCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Train {
		ga, gb := a.Train[i].G, b.Train[i].G
		if ga.NumNodes() != gb.NumNodes() || ga.NumEdges() != gb.NumEdges() {
			t.Fatalf("instance %d differs across same-seed runs", i)
		}
		if a.Train[i].Target != b.Train[i].Target {
			t.Fatalf("instance %d target differs: %v vs %v", i, a.Train[i].Target, b.Train[i].Target)
		}
	}
}

func TestZINCMatchesTableII(t *testing.T) {
	d := ZINC(Config{TrainSize: 200, ValSize: 20, TestSize: 20, Seed: 1})
	row := ComputeTableII(d)
	// Paper Table II: ZINC has ~23 nodes, ~50 directed edges, sparsity 0.096.
	if math.Abs(row.MeanNodes-23) > 2 {
		t.Errorf("mean nodes = %v, want ~23", row.MeanNodes)
	}
	if math.Abs(row.MeanEdges-50) > 5 {
		t.Errorf("mean directed edges = %v, want ~50", row.MeanEdges)
	}
	if math.Abs(row.Sparsity-0.096) > 0.03 {
		t.Errorf("sparsity = %v, want ~0.096", row.Sparsity)
	}
}

func TestAQSOLMatchesTableII(t *testing.T) {
	d := AQSOL(Config{TrainSize: 200, ValSize: 20, TestSize: 20, Seed: 1})
	row := ComputeTableII(d)
	// Paper Table II: AQSOL has ~18 nodes, ~36 directed edges.
	if math.Abs(row.MeanNodes-18) > 2 {
		t.Errorf("mean nodes = %v, want ~18", row.MeanNodes)
	}
	if math.Abs(row.MeanEdges-36) > 5 {
		t.Errorf("mean directed edges = %v, want ~36", row.MeanEdges)
	}
}

func TestCSLMatchesTableII(t *testing.T) {
	d := CSL(smallCfg(1))
	for i, inst := range d.All() {
		if inst.G.NumNodes() != 41 {
			t.Fatalf("instance %d: nodes = %d, want 41", i, inst.G.NumNodes())
		}
		if 2*inst.G.NumEdges() != 164 {
			t.Fatalf("instance %d: directed edges = %d, want 164", i, 2*inst.G.NumEdges())
		}
		for v := 0; v < 41; v++ {
			if inst.G.Degree(graph.NodeID(v)) != 4 {
				t.Fatalf("instance %d: degree(%d) = %d, want 4 (regular)", i, v, inst.G.Degree(graph.NodeID(v)))
			}
		}
		if inst.Label < 0 || inst.Label >= d.NumClasses {
			t.Fatalf("instance %d: label %d out of range", i, inst.Label)
		}
	}
}

func TestCSLClassBalance(t *testing.T) {
	d := CSL(Config{TrainSize: 80, ValSize: 0, TestSize: 0, Seed: 1})
	counts := make([]int, d.NumClasses)
	for _, inst := range d.Train {
		counts[inst.Label]++
	}
	for c, n := range counts {
		if n != 20 {
			t.Errorf("class %d count = %d, want 20 (round-robin)", c, n)
		}
	}
}

func TestCYCLESLabelsAndCycles(t *testing.T) {
	d := CYCLES(smallCfg(2))
	pos, neg := 0, 0
	for i, inst := range d.All() {
		// Every instance has exactly one planted cycle: m = n (cycle of
		// length L contributes L edges on L vertices, tree adds n-L).
		if inst.G.NumEdges() != inst.G.NumNodes() {
			t.Fatalf("instance %d: m=%d n=%d, want m=n", i, inst.G.NumEdges(), inst.G.NumNodes())
		}
		onCycle := 0
		for _, f := range inst.NodeFeat {
			if f == 0 {
				onCycle++
			}
		}
		switch inst.Label {
		case 1:
			pos++
			if onCycle != cyclesPositiveLen {
				t.Fatalf("instance %d: positive with %d cycle nodes", i, onCycle)
			}
		case 0:
			neg++
			if onCycle != cyclesNegativeLen {
				t.Fatalf("instance %d: negative with %d cycle nodes", i, onCycle)
			}
		default:
			t.Fatalf("instance %d: label %d", i, inst.Label)
		}
	}
	if pos == 0 || neg == 0 {
		t.Errorf("class balance: %d positive, %d negative", pos, neg)
	}
}

func TestCYCLESMatchesTableII(t *testing.T) {
	d := CYCLES(Config{TrainSize: 100, ValSize: 10, TestSize: 10, Seed: 3})
	row := ComputeTableII(d)
	// Paper Table II: CYCLES has ~49 nodes, ~88 directed edges... our
	// construction has m = n undirected (98 directed at n=49); the paper's
	// 88 implies slightly sparser graphs. Accept the small gap: sparsity
	// is within range.
	if math.Abs(row.MeanNodes-49) > 3 {
		t.Errorf("mean nodes = %v, want ~49", row.MeanNodes)
	}
	if row.Sparsity < 0.03 || row.Sparsity > 0.05 {
		t.Errorf("sparsity = %v, want ~0.036-0.042", row.Sparsity)
	}
}

func TestMoleculesRespectDegreeCap(t *testing.T) {
	d := ZINC(smallCfg(4))
	for i, inst := range d.All() {
		for v := 0; v < inst.G.NumNodes(); v++ {
			if deg := inst.G.Degree(graph.NodeID(v)); deg > 4 {
				t.Fatalf("instance %d: degree(%d) = %d > 4", i, v, deg)
			}
		}
	}
}

func TestMoleculesConnected(t *testing.T) {
	d := AQSOL(smallCfg(5))
	for i, inst := range d.All() {
		if _, comps := inst.G.ConnectedComponents(); comps != 1 {
			t.Fatalf("instance %d: %d components, want 1 (tree backbone)", i, comps)
		}
	}
}

func TestTableIIIShapes(t *testing.T) {
	t.Run("CSL regular gives zeros and KS 1", func(t *testing.T) {
		d := CSL(smallCfg(6))
		row := ComputeTableIII(d, 0, 20, 1)
		if row.MeanDegStd != 0 {
			t.Errorf("μ(σ(d)) = %v, want 0 for regular graphs", row.MeanDegStd)
		}
		if row.StdDegMin != 0 || row.StdDegMax != 0 || row.StdDegMean != 0 {
			t.Errorf("σ(min/max/mean) = %v/%v/%v, want 0", row.StdDegMin, row.StdDegMax, row.StdDegMean)
		}
		if row.MeanKS < 0.999 {
			t.Errorf("μ(ε) = %v, want 1 for identical distributions", row.MeanKS)
		}
	})
	t.Run("ZINC consistent distributions", func(t *testing.T) {
		d := ZINC(smallCfg(6))
		row := ComputeTableIII(d, 0, 30, 1)
		if row.MeanDegStd <= 0 || row.MeanDegStd > 1.2 {
			t.Errorf("μ(σ(d)) = %v, want small positive (paper: 0.51)", row.MeanDegStd)
		}
		if row.MeanKS < 0.5 {
			t.Errorf("μ(ε) = %v, want near 1 (paper: 0.94)", row.MeanKS)
		}
	})
}

func TestTargetsVaryAndAreFinite(t *testing.T) {
	d := ZINC(smallCfg(8))
	first := d.Train[0].Target
	varies := false
	for _, inst := range d.Train {
		if math.IsNaN(inst.Target) || math.IsInf(inst.Target, 0) {
			t.Fatalf("non-finite target %v", inst.Target)
		}
		if inst.Target != first {
			varies = true
		}
	}
	if !varies {
		t.Error("all targets identical; nothing to learn")
	}
}

func TestBatchInstances(t *testing.T) {
	d := ZINC(smallCfg(9))
	batches, err := BatchInstances(d.Train, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 3 { // 40 instances / 16 = 2 full + 1 partial
		t.Fatalf("batches = %d, want 3", len(batches))
	}
	if batches[0].NumGraphs() != 16 || batches[2].NumGraphs() != 8 {
		t.Errorf("batch sizes = %d, %d", batches[0].NumGraphs(), batches[2].NumGraphs())
	}
	total := 0
	for _, b := range batches {
		total += b.Merged.NumNodes()
	}
	wantTotal := 0
	for _, inst := range d.Train {
		wantTotal += inst.G.NumNodes()
	}
	if total != wantTotal {
		t.Errorf("total batched nodes = %d, want %d", total, wantTotal)
	}
}

func TestBatchInstancesZeroSize(t *testing.T) {
	d := CSL(smallCfg(10))
	batches, err := BatchInstances(d.Val, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != len(d.Val) {
		t.Errorf("batch size 0 should fall back to 1 graph per batch: %d batches", len(batches))
	}
}

func TestDegreeHistogram(t *testing.T) {
	d := ZINC(smallCfg(11))
	h := DegreeHistogram(d, 6)
	total := 0
	for _, c := range h {
		total += c
	}
	wantTotal := 0
	for _, inst := range d.All() {
		wantTotal += inst.G.NumNodes()
	}
	if total != wantTotal {
		t.Errorf("histogram total = %d, want %d", total, wantTotal)
	}
}

func TestTaskString(t *testing.T) {
	if TaskRegression.String() != "regression" || TaskClassification.String() != "classification" {
		t.Error("Task.String mismatch")
	}
	if Task(99).String() != "Task(99)" {
		t.Errorf("unknown task string = %q", Task(99).String())
	}
}

func BenchmarkGenerateZINC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ZINC(Config{TrainSize: 100, ValSize: 10, TestSize: 10, Seed: int64(i)})
	}
}
