// Package datasets generates the four evaluation workloads of the paper —
// ZINC, AQSOL, CSL and CYCLES — as seeded synthetic equivalents.
//
// The real ZINC/AQSOL molecular datasets are not available offline, so the
// molecular generators sample graphs matched to the published statistics
// (Table II: node/edge counts and sparsity; Table III: degree-distribution
// shape) and attach *synthetic but learnable* targets computed from local
// graph structure, so that convergence experiments (Figs 11–15) exercise
// real learning. CSL and CYCLES are themselves synthetic datasets; their
// constructions follow the source papers (circulant skip-link graphs;
// planted fixed-length cycles).
package datasets

import (
	"errors"
	"fmt"
	"math/rand"

	"mega/internal/graph"
)

// Task distinguishes the two downstream graph-prediction task families the
// paper evaluates (§III-2: graph regression and graph classification).
type Task int

const (
	// TaskRegression predicts one scalar per graph (ZINC, AQSOL).
	TaskRegression Task = iota + 1
	// TaskClassification predicts one class per graph (CSL, CYCLES).
	TaskClassification
)

// String implements fmt.Stringer.
func (t Task) String() string {
	switch t {
	case TaskRegression:
		return "regression"
	case TaskClassification:
		return "classification"
	default:
		return fmt.Sprintf("Task(%d)", int(t))
	}
}

// Instance is a single graph sample with categorical node and edge features
// and either a regression target or a class label.
type Instance struct {
	G *graph.Graph
	// NodeFeat[v] is the categorical node type of vertex v (atom type for
	// molecular sets, positional bucket for CSL, cycle-distance bucket for
	// CYCLES).
	NodeFeat []int32
	// EdgeFeat[e] is the categorical type of stored (undirected) edge e.
	EdgeFeat []int32
	// Target is the regression target (regression tasks only).
	Target float64
	// Label is the class label (classification tasks only).
	Label int
}

// Dataset is a named collection of instances with fixed train/val/test
// splits, mirroring the splits in Table II.
type Dataset struct {
	Name         string
	Task         Task
	NumNodeTypes int
	NumEdgeTypes int
	NumClasses   int // classification only

	Train []Instance
	Val   []Instance
	Test  []Instance
}

// All returns every instance across splits in train, val, test order.
func (d *Dataset) All() []Instance {
	out := make([]Instance, 0, len(d.Train)+len(d.Val)+len(d.Test))
	out = append(out, d.Train...)
	out = append(out, d.Val...)
	out = append(out, d.Test...)
	return out
}

// Config controls the size of a generated dataset. Zero sizes select the
// paper's split sizes (Table II), which are large; experiments that only
// need the memory-behaviour shape use scaled-down configs.
type Config struct {
	TrainSize int
	ValSize   int
	TestSize  int
	Seed      int64
}

// ErrUnknownDataset is returned by Generate for unrecognised names.
var ErrUnknownDataset = errors.New("datasets: unknown dataset name")

// Generate builds a dataset by its paper name: "ZINC", "AQSOL", "CSL" or
// "CYCLES".
func Generate(name string, cfg Config) (*Dataset, error) {
	switch name {
	case "ZINC":
		return ZINC(cfg), nil
	case "AQSOL":
		return AQSOL(cfg), nil
	case "CSL":
		return CSL(cfg), nil
	case "CYCLES":
		return CYCLES(cfg), nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
}

// Names lists the four evaluation datasets in the paper's order.
func Names() []string { return []string{"ZINC", "AQSOL", "CSL", "CYCLES"} }

func (c Config) withDefaults(train, val, test int) Config {
	if c.TrainSize == 0 {
		c.TrainSize = train
	}
	if c.ValSize == 0 {
		c.ValSize = val
	}
	if c.TestSize == 0 {
		c.TestSize = test
	}
	return c
}

// molecularParams tunes the molecule-like generator toward the Table II/III
// statistics of a dataset.
type molecularParams struct {
	meanNodes   int // μ(n): 23 for ZINC, 18 for AQSOL
	nodesJitter int // uniform ±jitter
	extraEdges  int // ring closures beyond the spanning tree
	edgesJitter int
	numAtoms    int // node-type vocabulary
	numBonds    int // edge-type vocabulary
	maxDegree   int
}

// moleculeLike samples one molecule-like graph: a random spanning tree with
// bounded degree plus a few ring-closing edges, the structure that yields
// the low, consistent degree variance reported in Table III.
func moleculeLike(rng *rand.Rand, p molecularParams) Instance {
	n := p.meanNodes
	if p.nodesJitter > 0 {
		n += rng.Intn(2*p.nodesJitter+1) - p.nodesJitter
	}
	if n < 3 {
		n = 3
	}
	deg := make([]int, n)
	edges := make([]graph.Edge, 0, n+p.extraEdges)
	// Degree-capped random tree: each vertex attaches to a random earlier
	// vertex that still has capacity.
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		for tries := 0; deg[u] >= p.maxDegree && tries < 4*v; tries++ {
			u = rng.Intn(v)
		}
		edges = append(edges, graph.Edge{Src: graph.NodeID(u), Dst: graph.NodeID(v)})
		deg[u]++
		deg[v]++
	}
	// Ring closures between non-adjacent capacity-remaining vertices.
	extra := p.extraEdges
	if p.edgesJitter > 0 {
		extra += rng.Intn(2*p.edgesJitter+1) - p.edgesJitter
	}
	have := make(map[[2]graph.NodeID]bool, len(edges)+extra)
	for _, e := range edges {
		a, b := e.Src, e.Dst
		if a > b {
			a, b = b, a
		}
		have[[2]graph.NodeID{a, b}] = true
	}
	for added, tries := 0, 0; added < extra && tries < 50*extra+50; tries++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v || deg[u] >= p.maxDegree || deg[v] >= p.maxDegree {
			continue
		}
		a, b := u, v
		if a > b {
			a, b = b, a
		}
		key := [2]graph.NodeID{a, b}
		if have[key] {
			continue
		}
		have[key] = true
		edges = append(edges, graph.Edge{Src: a, Dst: b})
		deg[u]++
		deg[v]++
		added++
	}
	g := graph.MustNew(n, edges, false)
	nodeFeat := make([]int32, n)
	for v := range nodeFeat {
		nodeFeat[v] = int32(rng.Intn(p.numAtoms))
	}
	edgeFeat := make([]int32, g.NumEdges())
	for e := range edgeFeat {
		edgeFeat[e] = int32(rng.Intn(p.numBonds))
	}
	return Instance{G: g, NodeFeat: nodeFeat, EdgeFeat: edgeFeat}
}

// molecularTarget computes a synthetic but structurally grounded regression
// target: a weighted sum of atom-type contributions scaled by local degree,
// a ring-count term (edges beyond a spanning forest), and small noise. A
// message-passing GNN can fit it because every term is a 1–2 hop local
// statistic.
func molecularTarget(rng *rand.Rand, inst Instance, atomWeight []float64, ringWeight, noise float64) float64 {
	g := inst.G
	t := 0.0
	for v := 0; v < g.NumNodes(); v++ {
		w := atomWeight[int(inst.NodeFeat[v])%len(atomWeight)]
		t += w * (1 + 0.15*float64(g.Degree(graph.NodeID(v))))
	}
	_, comps := g.ConnectedComponents()
	rings := g.NumEdges() - (g.NumNodes() - comps)
	t += ringWeight * float64(rings)
	t -= 0.02 * float64(g.NumNodes())
	t += noise * rng.NormFloat64()
	return t
}

// zincAtomWeights is the fixed per-atom-type contribution used by the ZINC
// surrogate target; values are arbitrary but fixed so runs are reproducible.
var zincAtomWeights = []float64{
	0.31, -0.22, 0.10, 0.45, -0.37, 0.05, 0.27, -0.12, 0.33, -0.28,
	0.18, -0.05, 0.41, -0.33, 0.07, 0.22, -0.17, 0.38, -0.25, 0.12,
	0.29, -0.08, 0.16, -0.42, 0.35, -0.14, 0.09, 0.24,
}

// aqsolAtomWeights is the AQSOL surrogate's per-atom contribution table.
var aqsolAtomWeights = []float64{
	-0.51, 0.12, -0.30, 0.25, 0.47, -0.07, 0.15, -0.22, 0.38, -0.45,
	0.03, 0.28, -0.18, 0.33, -0.11, 0.41, -0.36, 0.06, 0.19, -0.27,
	0.30, -0.02, 0.23, -0.39, 0.44, -0.16, 0.08, 0.35, -0.20, 0.13,
	0.26, -0.09, 0.17, -0.32, 0.40, -0.13, 0.04, 0.21, -0.24, 0.37,
	-0.41, 0.11, 0.29, -0.06, 0.14, -0.34, 0.46, -0.19, 0.02, 0.32,
	-0.26, 0.09, 0.20, -0.15, 0.43, -0.29, 0.07, 0.24, -0.38, 0.16,
	0.34, -0.03, 0.27, -0.10, 0.39,
}

// ZINC generates the ZINC-like molecular regression dataset:
// Table II: 10000/1000/1000 splits, ~23 nodes, ~50 directed edges,
// sparsity ~0.096. Node vocabulary: 28 atom types; edges: 4 bond types.
func ZINC(cfg Config) *Dataset {
	cfg = cfg.withDefaults(10000, 1000, 1000)
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x21AC))
	p := molecularParams{
		meanNodes: 23, nodesJitter: 6,
		extraEdges: 3, edgesJitter: 1,
		numAtoms: 28, numBonds: 4, maxDegree: 4,
	}
	gen := func() Instance {
		inst := moleculeLike(rng, p)
		inst.Target = molecularTarget(rng, inst, zincAtomWeights, 0.5, 0.05)
		return inst
	}
	return assemble("ZINC", TaskRegression, p.numAtoms, p.numBonds, 0, cfg, gen)
}

// AQSOL generates the AQSOL-like solubility regression dataset:
// Table II: 7985/996/996 splits, ~18 nodes, ~36 directed edges,
// sparsity ~0.148. Node vocabulary: 65 atom types; edges: 5 bond types.
func AQSOL(cfg Config) *Dataset {
	cfg = cfg.withDefaults(7985, 996, 996)
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0xA9501))
	p := molecularParams{
		meanNodes: 18, nodesJitter: 5,
		extraEdges: 1, edgesJitter: 1,
		numAtoms: 65, numBonds: 5, maxDegree: 4,
	}
	gen := func() Instance {
		inst := moleculeLike(rng, p)
		inst.Target = molecularTarget(rng, inst, aqsolAtomWeights, 0.4, 0.05)
		return inst
	}
	return assemble("AQSOL", TaskRegression, p.numAtoms, p.numBonds, 0, cfg, gen)
}

// cslSkips are the four circulant skip lengths realising the paper's "4
// types of regular graphs" (Table II: 41 nodes, 164 directed edges — i.e.
// degree-4 circulants CSL(41, R)).
var cslSkips = []int{2, 3, 5, 7}

// cslPositionBuckets is the positional-feature vocabulary for CSL. Real CSL
// training uses positional encodings (the graphs are vertex-transitive, so
// constant features carry no class signal); we bucket the pre-rotation ring
// position, the discrete analogue of the benchmark suite's Laplacian
// positional encodings.
const cslPositionBuckets = 8

// CSL generates the circular-skip-link classification dataset:
// Table II: 90/30/30 splits over 4 classes, 41 nodes, 164 directed edges.
func CSL(cfg Config) *Dataset {
	cfg = cfg.withDefaults(90, 30, 30)
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0xC51))
	const n = 41
	class := 0
	gen := func() Instance {
		skip := cslSkips[class%len(cslSkips)]
		label := class % len(cslSkips)
		class++
		base, err := graph.Circulant(n, []int{1, skip})
		if err != nil {
			panic(err) // unreachable: constants validated by construction
		}
		// Rotate the labelling: circulants are vertex-transitive, so a
		// rotation gives a different instance of the same class.
		rot := rng.Intn(n)
		perm := make([]graph.NodeID, n)
		for i := range perm {
			perm[i] = graph.NodeID((i + rot) % n)
		}
		g, err := graph.PermuteNodes(base, perm)
		if err != nil {
			panic(err)
		}
		nodeFeat := make([]int32, n)
		for i := 0; i < n; i++ {
			nodeFeat[perm[i]] = int32(i % cslPositionBuckets)
		}
		edgeFeat := make([]int32, g.NumEdges())
		return Instance{G: g, NodeFeat: nodeFeat, EdgeFeat: edgeFeat, Label: label}
	}
	return assemble("CSL", TaskClassification, cslPositionBuckets, 1, len(cslSkips), cfg, gen)
}

// CYCLES plants a fixed-length cycle (positive class, length 6) or a
// different-length cycle (negative class, length 10) inside a random tree:
// Table II: 9000/1000/10000 splits, ~49 nodes, ~88 directed edges.
// Node features bucket the hop distance to the planted cycle (0, 1, 2, 3+),
// so cycle membership is observable to a message-passing model.
const (
	cyclesPositiveLen = 6
	cyclesNegativeLen = 10
	cyclesDistBuckets = 4
)

// CYCLES generates the fixed-length-cycle detection dataset.
func CYCLES(cfg Config) *Dataset {
	cfg = cfg.withDefaults(9000, 1000, 10000)
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0xCCC1E5))
	flip := false
	gen := func() Instance {
		positive := flip
		flip = !flip
		cycLen := cyclesNegativeLen
		label := 0
		if positive {
			cycLen = cyclesPositiveLen
			label = 1
		}
		n := 49 + rng.Intn(7) - 3
		if n < cycLen+2 {
			n = cycLen + 2
		}
		edges := make([]graph.Edge, 0, n)
		// Planted cycle on vertices [0, cycLen).
		for v := 0; v < cycLen; v++ {
			edges = append(edges, graph.Edge{Src: graph.NodeID(v), Dst: graph.NodeID((v + 1) % cycLen)})
		}
		// Random tree hanging off the cycle.
		for v := cycLen; v < n; v++ {
			u := rng.Intn(v)
			edges = append(edges, graph.Edge{Src: graph.NodeID(u), Dst: graph.NodeID(v)})
		}
		g := graph.MustNew(n, edges, false)
		nodeFeat := cycleDistanceFeatures(g, cycLen)
		edgeFeat := make([]int32, g.NumEdges())
		return Instance{G: g, NodeFeat: nodeFeat, EdgeFeat: edgeFeat, Label: label}
	}
	return assemble("CYCLES", TaskClassification, cyclesDistBuckets, 1, 2, cfg, gen)
}

// cycleDistanceFeatures BFSes from the planted cycle vertices [0, cycLen)
// and buckets each vertex's hop distance into {0, 1, 2, 3+}.
func cycleDistanceFeatures(g *graph.Graph, cycLen int) []int32 {
	n := g.NumNodes()
	dist := make([]int, n)
	for v := range dist {
		dist[v] = -1
	}
	queue := make([]graph.NodeID, 0, n)
	for v := 0; v < cycLen; v++ {
		dist[v] = 0
		queue = append(queue, graph.NodeID(v))
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if dist[u] == -1 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	feat := make([]int32, n)
	for v, d := range dist {
		if d < 0 || d >= cyclesDistBuckets {
			d = cyclesDistBuckets - 1
		}
		feat[v] = int32(d)
	}
	return feat
}

// assemble fills the three splits by repeatedly calling gen.
func assemble(name string, task Task, nodeTypes, edgeTypes, classes int, cfg Config, gen func() Instance) *Dataset {
	d := &Dataset{
		Name:         name,
		Task:         task,
		NumNodeTypes: nodeTypes,
		NumEdgeTypes: edgeTypes,
		NumClasses:   classes,
	}
	d.Train = make([]Instance, cfg.TrainSize)
	for i := range d.Train {
		d.Train[i] = gen()
	}
	d.Val = make([]Instance, cfg.ValSize)
	for i := range d.Val {
		d.Val[i] = gen()
	}
	d.Test = make([]Instance, cfg.TestSize)
	for i := range d.Test {
		d.Test[i] = gen()
	}
	return d
}
