package datasets

import (
	"math/rand"

	"mega/internal/graph"
	"mega/internal/stats"
)

// TableII holds the per-dataset overview statistics of the paper's
// Table II.
type TableII struct {
	Name      string
	Train     int
	Val       int
	Test      int
	MeanNodes float64
	// MeanEdges is the mean *directed* edge count (each undirected edge
	// counts twice), matching the paper's edge convention (see DESIGN.md).
	MeanEdges float64
	Sparsity  float64
}

// ComputeTableII summarises a dataset into the Table II row format.
func ComputeTableII(d *Dataset) TableII {
	all := d.All()
	nodes := make([]float64, len(all))
	edges := make([]float64, len(all))
	sparsities := make([]float64, len(all))
	for i, inst := range all {
		nodes[i] = float64(inst.G.NumNodes())
		edges[i] = float64(2 * inst.G.NumEdges())
		sparsities[i] = inst.G.Sparsity()
	}
	return TableII{
		Name:      d.Name,
		Train:     len(d.Train),
		Val:       len(d.Val),
		Test:      len(d.Test),
		MeanNodes: stats.Mean(nodes),
		MeanEdges: stats.Mean(edges),
		Sparsity:  stats.Mean(sparsities),
	}
}

// TableIII holds the degree-distribution consistency statistics of the
// paper's Table III: how uniform the degree-distribution shape is across
// the instances of one dataset.
type TableIII struct {
	Name string
	// MeanDegStd is μ(σ(d)): the mean across graphs of the per-graph
	// degree standard deviation.
	MeanDegStd float64
	// StdDegMin is σ(d_min): the std across graphs of the per-graph
	// minimum degree.
	StdDegMin float64
	// StdDegMax is σ(d_max): the std across graphs of the per-graph
	// maximum degree.
	StdDegMax float64
	// StdDegMean is σ(d_mean): the std across graphs of the per-graph
	// mean degree.
	StdDegMean float64
	// MeanKS is μ(ε): the mean Kolmogorov–Smirnov p-value over sampled
	// pairs of per-graph degree distributions; values near 1 mean the
	// distributions are mutually consistent.
	MeanKS float64
}

// ComputeTableIII computes degree-distribution statistics over at most
// maxGraphs instances (0 = all) using ksPairs sampled graph pairs for the
// KS column.
func ComputeTableIII(d *Dataset, maxGraphs, ksPairs int, seed int64) TableIII {
	all := d.All()
	if maxGraphs > 0 && len(all) > maxGraphs {
		all = all[:maxGraphs]
	}
	degStd := make([]float64, len(all))
	degMin := make([]float64, len(all))
	degMax := make([]float64, len(all))
	degMean := make([]float64, len(all))
	degSeqs := make([][]float64, len(all))
	for i, inst := range all {
		ds := stats.IntsToFloats(inst.G.Degrees())
		degSeqs[i] = ds
		degStd[i] = stats.StdDev(ds)
		mn, _ := stats.Min(ds)
		mx, _ := stats.Max(ds)
		degMin[i] = mn
		degMax[i] = mx
		degMean[i] = stats.Mean(ds)
	}
	rng := rand.New(rand.NewSource(seed))
	if ksPairs <= 0 {
		ksPairs = 50
	}
	ksVals := make([]float64, 0, ksPairs)
	for k := 0; k < ksPairs && len(all) >= 2; k++ {
		i := rng.Intn(len(all))
		j := rng.Intn(len(all))
		if i == j {
			j = (j + 1) % len(all)
		}
		ksStat, err := stats.KSStatistic(degSeqs[i], degSeqs[j])
		if err != nil {
			continue
		}
		ksVals = append(ksVals, stats.KSPValue(ksStat, len(degSeqs[i]), len(degSeqs[j])))
	}
	return TableIII{
		Name:       d.Name,
		MeanDegStd: stats.Mean(degStd),
		StdDegMin:  stats.StdDev(degMin),
		StdDegMax:  stats.StdDev(degMax),
		StdDegMean: stats.StdDev(degMean),
		MeanKS:     stats.Mean(ksVals),
	}
}

// DegreeHistogram pools the degree sequences of every instance in the
// dataset into one histogram with the given number of bins; used by the
// workload-characterisation tooling.
func DegreeHistogram(d *Dataset, nBins int) []int {
	var pooled []float64
	for _, inst := range d.All() {
		pooled = append(pooled, stats.IntsToFloats(inst.G.Degrees())...)
	}
	if len(pooled) == 0 {
		return make([]int, nBins)
	}
	mx, _ := stats.Max(pooled)
	return stats.Histogram(pooled, 0, mx+1, nBins)
}

// BatchInstances groups instances into graph.Batches of the given batch
// size, in order, the unit of work a training step consumes.
func BatchInstances(insts []Instance, batchSize int) ([]*graph.Batch, error) {
	if batchSize <= 0 {
		batchSize = 1
	}
	var out []*graph.Batch
	for lo := 0; lo < len(insts); lo += batchSize {
		hi := lo + batchSize
		if hi > len(insts) {
			hi = len(insts)
		}
		members := make([]*graph.Graph, 0, hi-lo)
		for _, inst := range insts[lo:hi] {
			members = append(members, inst.G)
		}
		b, err := graph.NewBatch(members)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}
