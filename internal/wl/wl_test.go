package wl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mega/internal/graph"
)

func TestInitialLabelsUniform(t *testing.T) {
	r := NewRefiner()
	l := r.InitialLabels(5, nil)
	for _, x := range l {
		if x != l[0] {
			t.Fatalf("uniform initial labels differ: %v", l)
		}
	}
}

func TestInitialLabelsCategorical(t *testing.T) {
	r := NewRefiner()
	l := r.InitialLabels(4, []int32{1, 2, 1, 3})
	if l[0] != l[2] {
		t.Error("equal categories should get equal labels")
	}
	if l[0] == l[1] || l[1] == l[3] {
		t.Error("distinct categories should get distinct labels")
	}
}

func TestRefineDistinguishesDegrees(t *testing.T) {
	// Path graph 0-1-2: ends have degree 1, middle degree 2.
	g := graph.Path(3)
	r := NewRefiner()
	l := r.RefineK(g, nil, 1)
	if l[0] != l[2] {
		t.Error("symmetric end vertices should share a label")
	}
	if l[0] == l[1] {
		t.Error("degree-1 and degree-2 vertices should differ after 1 round")
	}
}

func TestIsomorphicGraphsEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.ErdosRenyiM(rng, 20, 40)
	perm := graph.RandomPermutation(rng, 20)
	h, err := graph.PermuteNodes(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	for hops := 1; hops <= 4; hops++ {
		if s := GraphSimilarity(g, h, nil, nil, hops); s != 1 {
			t.Errorf("hops=%d: similarity = %v, want 1 for isomorphic graphs", hops, s)
		}
	}
}

func TestIsomorphicWithPermutedFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graph.ErdosRenyiM(rng, 15, 30)
	feat := make([]int32, 15)
	for i := range feat {
		feat[i] = int32(rng.Intn(4))
	}
	perm := graph.RandomPermutation(rng, 15)
	h, err := graph.PermuteNodes(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	permFeat := make([]int32, 15)
	for old, newID := range perm {
		permFeat[newID] = feat[old]
	}
	if s := GraphSimilarity(g, h, feat, permFeat, 3); s != 1 {
		t.Errorf("similarity = %v, want 1", s)
	}
}

func TestDifferentGraphsScoreBelowOne(t *testing.T) {
	cyc := graph.Cycle(8)
	pth := graph.Path(8)
	s := GraphSimilarity(cyc, pth, nil, nil, 2)
	if s >= 1 {
		t.Errorf("cycle vs path similarity = %v, want < 1", s)
	}
	if s <= 0 {
		t.Errorf("cycle vs path similarity = %v, want > 0 (shared interior structure)", s)
	}
}

func TestCSLClassesDistinguishedByWL(t *testing.T) {
	// WL separates circulant skip classes after enough rounds when paired
	// with positional initial labels (vertex-transitive graphs are NOT
	// distinguished by pure-topology 1-WL — the classic CSL counterexample).
	a, err := graph.Circulant(11, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := graph.Circulant(11, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	feat := make([]int32, 11)
	for i := range feat {
		feat[i] = int32(i % 4)
	}
	if s := GraphSimilarity(a, b, feat, feat, 2); s >= 1 {
		t.Errorf("skip-2 vs skip-3 with positional labels similarity = %v, want < 1", s)
	}
	// And the counterexample itself: uniform labels cannot separate
	// regular graphs of equal degree.
	if s := GraphSimilarity(a, b, nil, nil, 3); s != 1 {
		t.Errorf("1-WL on regular circulants = %v, want 1 (known limitation)", s)
	}
}

func TestSimilarityEdgeCases(t *testing.T) {
	if s := Similarity(nil, nil); s != 1 {
		t.Errorf("Similarity(nil,nil) = %v, want 1", s)
	}
	if s := Similarity(Labeling{1}, nil); s != 0 {
		t.Errorf("Similarity(a,nil) = %v, want 0", s)
	}
	if s := Similarity(Labeling{1, 1, 2}, Labeling{1, 2, 2}); s != 2.0/3.0 {
		t.Errorf("Similarity = %v, want 2/3", s)
	}
	if s := Similarity(Labeling{1, 2}, Labeling{1, 2, 3, 4}); s != 0.5 {
		t.Errorf("different-size Similarity = %v, want 0.5", s)
	}
}

func TestEquivalent(t *testing.T) {
	if !Equivalent(Labeling{1, 2, 3}, Labeling{3, 2, 1}) {
		t.Error("same multiset should be equivalent")
	}
	if Equivalent(Labeling{1, 2}, Labeling{1, 2, 2}) {
		t.Error("different sizes should not be equivalent")
	}
	if Equivalent(Labeling{1, 1}, Labeling{1, 2}) {
		t.Error("different multisets should not be equivalent")
	}
}

func TestRefinerInterning(t *testing.T) {
	r := NewRefiner()
	g := graph.Cycle(5)
	_ = r.RefineK(g, nil, 2)
	if r.NumLabels() == 0 {
		t.Error("refiner should have interned labels")
	}
	// All vertices of a cycle are equivalent: each round adds exactly one
	// new label, so after 2 rounds + initial we expect 3 distinct labels.
	if r.NumLabels() != 3 {
		t.Errorf("NumLabels = %d, want 3 for vertex-transitive cycle", r.NumLabels())
	}
}

// Property: similarity is symmetric, bounded in [0,1], and 1 on identity.
func TestSimilarityProperties(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(n%20) + 2
		g := graph.ErdosRenyi(rng, size, 0.3)
		h := graph.ErdosRenyi(rng, size, 0.3)
		r := NewRefiner()
		la := r.RefineK(g, nil, 2)
		lb := r.RefineK(h, nil, 2)
		s1 := Similarity(la, lb)
		s2 := Similarity(lb, la)
		if s1 != s2 || s1 < 0 || s1 > 1 {
			return false
		}
		return Similarity(la, la) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: permutation invariance of the WL multiset.
func TestWLPermutationInvarianceProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(n%20) + 3
		g := graph.ErdosRenyi(rng, size, 0.4)
		perm := graph.RandomPermutation(rng, size)
		h, err := graph.PermuteNodes(g, perm)
		if err != nil {
			return false
		}
		return GraphSimilarity(g, h, nil, nil, 3) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRefineK(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.ErdosRenyiM(rng, 500, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewRefiner()
		_ = r.RefineK(g, nil, 3)
	}
}
