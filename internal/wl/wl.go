// Package wl implements the Weisfeiler-Lehman (WL) colour-refinement method
// the paper uses to cross-verify isomorphism between the original graph and
// MEGA's path-based representation (§III-B "Preserving Graph Properties" and
// the Figure 8 evaluation).
//
// The 1-WL procedure assigns each vertex an initial label and iteratively
// replaces every label with a canonical hash of (own label, sorted multiset
// of neighbour labels). After h rounds a vertex's label summarises its
// h-hop neighbourhood. Comparing the label multisets of two graphs bounds
// how similar their h-hop structure is: identical multisets are a necessary
// (not sufficient) condition for isomorphism, and the overlap fraction is a
// graded similarity score.
package wl

import (
	"sort"
	"strconv"
)

// Labeling is the per-vertex WL label assignment after some number of
// refinement rounds. Labels are dense ints interned by a Refiner, so equal
// ints across two graphs refined by the *same* Refiner mean equal
// neighbourhood structure.
type Labeling []int

// Refiner interns WL label signatures so labels are comparable across
// graphs. The zero value is not usable; use NewRefiner.
type Refiner struct {
	intern map[string]int
}

// NewRefiner returns an empty Refiner.
func NewRefiner() *Refiner {
	return &Refiner{intern: make(map[string]int)}
}

// Adjacency is the minimal graph view WL refinement needs: the number of
// vertices and each vertex's neighbours. It is satisfied by graph.Graph via
// the adapter in this package's callers and keeps wl free of substrate
// dependencies.
type Adjacency interface {
	NumNodes() int
	Neighbors(v int32) []int32
}

// InitialLabels returns the round-0 labelling: the provided per-vertex
// categorical labels interned, or all-equal labels when initial is nil
// (pure-topology refinement).
func (r *Refiner) InitialLabels(n int, initial []int32) Labeling {
	out := make(Labeling, n)
	if initial == nil {
		id := r.internKey("·")
		for i := range out {
			out[i] = id
		}
		return out
	}
	for i := range out {
		out[i] = r.internKey("i" + strconv.Itoa(int(initial[i])))
	}
	return out
}

// Refine performs one WL round: each vertex's new label is the interned
// signature of its current label and the sorted multiset of its neighbours'
// labels.
func (r *Refiner) Refine(g Adjacency, cur Labeling) Labeling {
	n := g.NumNodes()
	next := make(Labeling, n)
	var scratch refineScratch
	for v := 0; v < n; v++ {
		next[v] = r.refineVertex(g, cur, v, &scratch)
	}
	return next
}

// refineScratch holds the reusable buffers of per-vertex refinement.
type refineScratch struct {
	buf       []byte
	nbrLabels []int
}

// refineVertex computes one vertex's next-round label: the interned
// signature of its current label and the sorted multiset of its
// neighbours' labels.
func (r *Refiner) refineVertex(g Adjacency, cur Labeling, v int, s *refineScratch) int {
	s.nbrLabels = s.nbrLabels[:0]
	for _, u := range g.Neighbors(int32(v)) {
		s.nbrLabels = append(s.nbrLabels, cur[u])
	}
	sort.Ints(s.nbrLabels)
	s.buf = s.buf[:0]
	s.buf = strconv.AppendInt(s.buf, int64(cur[v]), 10)
	for _, l := range s.nbrLabels {
		s.buf = append(s.buf, '|')
		s.buf = strconv.AppendInt(s.buf, int64(l), 10)
	}
	return r.internKey(string(s.buf))
}

// RefineK runs k WL rounds from the given initial per-vertex labels
// (nil = uniform) and returns the final labelling.
func (r *Refiner) RefineK(g Adjacency, initial []int32, k int) Labeling {
	cur := r.InitialLabels(g.NumNodes(), initial)
	for i := 0; i < k; i++ {
		cur = r.Refine(g, cur)
	}
	return cur
}

func (r *Refiner) internKey(key string) int {
	if id, ok := r.intern[key]; ok {
		return id
	}
	id := len(r.intern)
	r.intern[key] = id
	return id
}

// NumLabels returns how many distinct label signatures the refiner has seen.
func (r *Refiner) NumLabels() int { return len(r.intern) }

// Similarity returns the multiset-overlap similarity between two labellings
// in [0, 1]: |intersection| / max(|a|, |b|) over the label multisets. Two
// labellings produced by the same Refiner over WL-equivalent graphs score
// 1.0; disjoint structure scores 0.
//
// This is the "similarity score ... where a score of 1 indicates complete
// graph identity" of §IV-B1.
func Similarity(a, b Labeling) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	counts := make(map[int]int, len(a))
	for _, l := range a {
		counts[l]++
	}
	inter := 0
	for _, l := range b {
		if counts[l] > 0 {
			counts[l]--
			inter++
		}
	}
	denom := len(a)
	if len(b) > denom {
		denom = len(b)
	}
	return float64(inter) / float64(denom)
}

// Equivalent reports whether two labellings have identical label multisets
// (the 1-WL isomorphism-test pass condition).
func Equivalent(a, b Labeling) bool {
	return len(a) == len(b) && Similarity(a, b) == 1
}

// GraphSimilarity is the end-to-end comparison used by the Figure 8
// experiment: refine both graphs k rounds with a shared Refiner (so label
// IDs are comparable) and return the multiset similarity.
func GraphSimilarity(a, b Adjacency, initialA, initialB []int32, hops int) float64 {
	r := NewRefiner()
	la := r.RefineK(a, initialA, hops)
	lb := r.RefineK(b, initialB, hops)
	return Similarity(la, lb)
}
