package wl

// Tracker maintains the per-round WL labels of a single mutating graph and
// re-refines them incrementally after an edge insertion or deletion. The
// locality of WL refinement makes this cheap: after mutating edge {u, v},
// the round-r label of a vertex can only change if it lies within r−1 hops
// of {u, v}, so each update touches a ball around the endpoints instead of
// the whole graph. The resulting delta — how many final-round labels
// changed — is the structural-change estimate package dynamic uses to
// choose between splicing a path repair and rebuilding from scratch.
//
// Labels stay interned by one shared Refiner across the tracker's lifetime,
// so label IDs are comparable across updates (at the cost of an intern
// table that grows with the number of distinct signatures ever seen).
type Tracker struct {
	r      *Refiner
	rounds int
	// labels[k] is the labelling after k rounds; len(labels) == rounds+1.
	labels []Labeling
}

// NewTracker refines g for the given number of rounds from the initial
// per-vertex labels (nil = uniform) and starts tracking it.
func NewTracker(g Adjacency, initial []int32, rounds int) *Tracker {
	if rounds < 0 {
		rounds = 0
	}
	t := &Tracker{r: NewRefiner(), rounds: rounds}
	cur := t.r.InitialLabels(g.NumNodes(), initial)
	t.labels = append(t.labels, cur)
	for k := 0; k < rounds; k++ {
		cur = t.r.Refine(g, cur)
		t.labels = append(t.labels, cur)
	}
	return t
}

// Rounds returns the refinement depth h.
func (t *Tracker) Rounds() int { return t.rounds }

// Labels returns the current final-round labelling (live; do not modify).
func (t *Tracker) Labels() Labeling { return t.labels[t.rounds] }

// Update re-refines the tracked labels after the mutation of edge {u, v}
// and returns how many final-round labels changed. g must be the
// post-mutation graph. The affected region is found by multi-source BFS
// from {u, v}; because any path into the set {u, v} reaches an endpoint
// before it could use the mutated edge, the same ball covers both the
// pre- and post-mutation graph, so one BFS on g suffices for insertions
// and deletions alike.
func (t *Tracker) Update(g Adjacency, u, v int32) int {
	return t.UpdateBatch(g, []int32{u, v})
}

// UpdateBatch is Update for a whole batch of mutations applied at once:
// endpoints lists every vertex incident to a mutated (inserted or deleted)
// edge, and g is the post-batch graph. The single-edge ball argument
// composes — a pre-batch path from any vertex into the mutated region
// reaches some endpoint through unmutated edges before it can use a
// mutated one, so one multi-source BFS from all endpoints on g covers the
// pre- and post-batch balls of every mutation in the batch.
func (t *Tracker) UpdateBatch(g Adjacency, endpoints []int32) int {
	if t.rounds == 0 || len(endpoints) == 0 {
		return 0
	}
	n := g.NumNodes()
	// Multi-source BFS to depth rounds−1: dist[x] = hops to nearest
	// endpoint, −1 = beyond the horizon. ball holds visited vertices in
	// ascending distance order; ballEnd[d] is the count with dist ≤ d.
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	ball := make([]int32, 0, 64)
	push := func(x int32, d int32) {
		if x < 0 || int(x) >= n || dist[x] >= 0 {
			return
		}
		dist[x] = d
		ball = append(ball, x)
	}
	for _, e := range endpoints {
		push(e, 0)
	}
	ballEnd := make([]int, t.rounds)
	head := 0
	for d := int32(0); d < int32(t.rounds)-1; d++ {
		tail := len(ball)
		for ; head < tail; head++ {
			for _, w := range g.Neighbors(ball[head]) {
				push(w, d+1)
			}
		}
		ballEnd[d] = tail
	}
	ballEnd[t.rounds-1] = len(ball)

	// Re-refine round by round: the round-k label of a vertex at distance
	// d changes only if d ≤ k−1, so round k touches ball[:ballEnd[k-1]].
	// Earlier-round labels are updated in place before later rounds read
	// them, which keeps every signature consistent.
	var scratch refineScratch
	changed := 0
	for k := 1; k <= t.rounds; k++ {
		prev, cur := t.labels[k-1], t.labels[k]
		final := k == t.rounds
		for _, x := range ball[:ballEnd[k-1]] {
			l := t.r.refineVertex(g, prev, int(x), &scratch)
			if l != cur[x] {
				cur[x] = l
				if final {
					changed++
				}
			}
		}
	}
	return changed
}
