package wl

import (
	"math/rand"
	"testing"

	"mega/internal/graph"
)

type gAdj struct{ g *graph.Graph }

func (a gAdj) NumNodes() int             { return a.g.NumNodes() }
func (a gAdj) Neighbors(v int32) []int32 { return a.g.Neighbors(v) }

// canonicalize maps labels to first-occurrence indices so partitions from
// different refiners compare equal.
func canonicalize(l Labeling) []int {
	seen := make(map[int]int, len(l))
	out := make([]int, len(l))
	for i, v := range l {
		id, ok := seen[v]
		if !ok {
			id = len(seen)
			seen[v] = id
		}
		out[i] = id
	}
	return out
}

func samePartition(a, b Labeling) bool {
	ca, cb := canonicalize(a), canonicalize(b)
	if len(ca) != len(cb) {
		return false
	}
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}

// TestTrackerMatchesFullRefinement streams random edge mutations through a
// Tracker and checks after each that its labels induce the same partition a
// from-scratch RefineK of the current graph would.
func TestTrackerMatchesFullRefinement(t *testing.T) {
	for _, rounds := range []int{1, 2, 3} {
		rng := rand.New(rand.NewSource(int64(rounds) * 77))
		const n = 24
		g := graph.ErdosRenyiM(rng, n, 40)
		tr := NewTracker(gAdj{g}, nil, rounds)
		edges := g.Edges()
		present := make(map[[2]graph.NodeID]int, len(edges))
		for i, e := range edges {
			u, v := e.Src, e.Dst
			if u > v {
				u, v = v, u
			}
			present[[2]graph.NodeID{u, v}] = i
		}
		for step := 0; step < 30; step++ {
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			if u == v {
				continue
			}
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			key := [2]graph.NodeID{a, b}
			if idx, ok := present[key]; ok {
				edges = append(edges[:idx], edges[idx+1:]...)
				delete(present, key)
				for k, i := range present {
					if i > idx {
						present[k] = i - 1
					}
				}
			} else {
				present[key] = len(edges)
				edges = append(edges, graph.Edge{Src: a, Dst: b})
			}
			ng, err := graph.New(n, append([]graph.Edge(nil), edges...), false)
			if err != nil {
				t.Fatal(err)
			}
			tr.Update(gAdj{ng}, int32(u), int32(v))
			want := NewRefiner().RefineK(gAdj{ng}, nil, rounds)
			if !samePartition(tr.Labels(), want) {
				t.Fatalf("rounds=%d step=%d: tracker partition diverged from full refinement", rounds, step)
			}
		}
	}
}

func TestTrackerZeroRounds(t *testing.T) {
	g := graph.Cycle(5)
	tr := NewTracker(gAdj{g}, nil, 0)
	if got := tr.Update(gAdj{g}, 0, 2); got != 0 {
		t.Errorf("zero-round update reported %d changes", got)
	}
}

func TestTrackerReportsDelta(t *testing.T) {
	// Adding a chord to a large cycle must change at least the endpoints'
	// labels (degree 2 -> 3) but far fewer than all of them for shallow
	// rounds.
	g := graph.Cycle(100)
	tr := NewTracker(gAdj{g}, nil, 2)
	var edges []graph.Edge
	edges = append(edges, g.Edges()...)
	edges = append(edges, graph.Edge{Src: 0, Dst: 50})
	ng, err := graph.New(100, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	changed := tr.Update(gAdj{ng}, 0, 50)
	if changed < 2 {
		t.Errorf("chord changed %d labels, want >= 2", changed)
	}
	if changed > 20 {
		t.Errorf("chord changed %d labels, want local effect (<= 20)", changed)
	}
}
