package reorder

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mega/internal/graph"
	"mega/internal/wl"
)

func TestComputeUnknownPolicy(t *testing.T) {
	if _, err := Compute(graph.Cycle(4), Policy(99)); err == nil {
		t.Error("unknown policy should error")
	}
}

func TestPolicyStrings(t *testing.T) {
	if DegreeSort.String() != "degree" || BFSOrder.String() != "bfs" || RCM.String() != "rcm" {
		t.Error("policy strings wrong")
	}
	if Policy(99).String() != "unknown" {
		t.Error("unknown policy string wrong")
	}
}

func TestPermutationsAreValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.ErdosRenyiM(rng, 40, 100)
	for _, p := range []Policy{DegreeSort, BFSOrder, RCM} {
		t.Run(p.String(), func(t *testing.T) {
			perm, err := Compute(g, p)
			if err != nil {
				t.Fatal(err)
			}
			if len(perm) != 40 {
				t.Fatalf("perm length %d", len(perm))
			}
			seen := make([]bool, 40)
			for _, v := range perm {
				if v < 0 || int(v) >= 40 || seen[v] {
					t.Fatalf("invalid permutation: %v", perm)
				}
				seen[v] = true
			}
		})
	}
}

func TestApplyPreservesStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.ErdosRenyiM(rng, 30, 70)
	for _, p := range []Policy{DegreeSort, BFSOrder, RCM} {
		t.Run(p.String(), func(t *testing.T) {
			rg, _, err := Apply(g, p)
			if err != nil {
				t.Fatal(err)
			}
			if s := wl.GraphSimilarity(g, rg, nil, nil, 3); s != 1 {
				t.Errorf("reordered graph not isomorphic: WL similarity %v", s)
			}
		})
	}
}

func TestDegreeSortPutsHubsFirst(t *testing.T) {
	// Star: hub (old 0) must become new 0.
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3}}
	g := graph.MustNew(4, edges, false)
	perm, err := Compute(g, DegreeSort)
	if err != nil {
		t.Fatal(err)
	}
	if perm[0] != 0 {
		t.Errorf("hub renumbered to %d, want 0", perm[0])
	}
}

func TestRCMReducesBandwidthOnGrids(t *testing.T) {
	// A ring with scrambled IDs: RCM should recover near-optimal bandwidth.
	rng := rand.New(rand.NewSource(3))
	base := graph.Cycle(64)
	scramble := graph.RandomPermutation(rng, 64)
	g, err := graph.PermuteNodes(base, scramble)
	if err != nil {
		t.Fatal(err)
	}
	before := Bandwidth(g)
	rg, _, err := Apply(g, RCM)
	if err != nil {
		t.Fatal(err)
	}
	after := Bandwidth(rg)
	if after >= before {
		t.Errorf("RCM bandwidth %d should beat scrambled %d", after, before)
	}
	// A cycle's optimal bandwidth is n-1 >= ... but RCM on a cycle gives ~2.
	if after > 4 {
		t.Errorf("RCM bandwidth on a cycle = %d, want <= 4", after)
	}
}

func TestBFSImprovesNeighborDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	base := graph.BarabasiAlbert(rng, 200, 2)
	scramble := graph.RandomPermutation(rng, 200)
	g, err := graph.PermuteNodes(base, scramble)
	if err != nil {
		t.Fatal(err)
	}
	before := MeanNeighborDistance(g)
	rg, _, err := Apply(g, BFSOrder)
	if err != nil {
		t.Fatal(err)
	}
	if after := MeanNeighborDistance(rg); after >= before {
		t.Errorf("BFS mean neighbor distance %v should beat scrambled %v", after, before)
	}
}

func TestBandwidthMetrics(t *testing.T) {
	g := graph.MustNew(5, []graph.Edge{{Src: 0, Dst: 4}, {Src: 1, Dst: 2}}, false)
	if bw := Bandwidth(g); bw != 4 {
		t.Errorf("Bandwidth = %d, want 4", bw)
	}
	if md := MeanNeighborDistance(g); md != 2.5 {
		t.Errorf("MeanNeighborDistance = %v, want 2.5", md)
	}
	empty := graph.MustNew(3, nil, false)
	if Bandwidth(empty) != 0 || MeanNeighborDistance(empty) != 0 {
		t.Error("edgeless metrics should be 0")
	}
}

func TestGatherCostImprovesWithLocality(t *testing.T) {
	// Scrambled vs RCM-reordered: the simulated gather must get cheaper
	// once the working set exceeds the 2 MiB L2 (rows of 64 B at n=60k =
	// ~3.7 MB), because reordering puts sender rows near the sequential
	// receiver stream.
	rng := rand.New(rand.NewSource(5))
	base := graph.Cycle(60000)
	scramble := graph.RandomPermutation(rng, 60000)
	g, err := graph.PermuteNodes(base, scramble)
	if err != nil {
		t.Fatal(err)
	}
	rg, _, err := Apply(g, RCM)
	if err != nil {
		t.Fatal(err)
	}
	costScrambled := GatherCost(g, 16)
	costRCM := GatherCost(rg, 16)
	if costRCM >= costScrambled {
		t.Errorf("RCM gather cost %v should beat scrambled %v", costRCM, costScrambled)
	}
	t.Logf("gather cost: scrambled %.3g vs RCM %.3g (%.2fx)", costScrambled, costRCM, costScrambled/costRCM)
}

// Property: every policy produces a bijection and an isomorphic graph.
func TestReorderIsomorphismProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, pRaw uint8) bool {
		n := int(nRaw%25) + 3
		rng := rand.New(rand.NewSource(seed))
		g := graph.ErdosRenyi(rng, n, 0.3)
		policy := []Policy{DegreeSort, BFSOrder, RCM}[int(pRaw)%3]
		rg, perm, err := Apply(g, policy)
		if err != nil {
			return false
		}
		if len(perm) != n {
			return false
		}
		return wl.GraphSimilarity(g, rg, nil, nil, 2) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRCM(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.BarabasiAlbert(rng, 2000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(g, RCM); err != nil {
			b.Fatal(err)
		}
	}
}
