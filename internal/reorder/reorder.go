// Package reorder implements the lightweight graph-reordering baselines the
// paper positions MEGA against (§II-B2): GNNAdvisor-style node renumbering
// that co-locates densely connected vertices so embedding fetches gain
// spatial locality. Three classic policies are provided — degree sort,
// BFS order, and reverse Cuthill-McKee — plus bandwidth/locality metrics
// and a gpusim-backed comparison harness, so the "is reordering enough?"
// question (Balaji & Lucia, §II-B2) is answerable quantitatively inside
// this repository.
package reorder

import (
	"errors"
	"sort"

	"mega/internal/gpusim"
	"mega/internal/graph"
)

// Policy selects a reordering algorithm.
type Policy int

// Reordering policies.
const (
	// DegreeSort renumbers vertices by descending degree: hot rows pack
	// together at the front of the embedding buffer.
	DegreeSort Policy = iota + 1
	// BFSOrder renumbers vertices in breadth-first discovery order from
	// the highest-degree vertex: neighbourhoods become contiguous-ish.
	BFSOrder
	// RCM is reverse Cuthill-McKee: BFS with degree-sorted tie-breaking,
	// reversed — the classic bandwidth-minimising heuristic.
	RCM
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case DegreeSort:
		return "degree"
	case BFSOrder:
		return "bfs"
	case RCM:
		return "rcm"
	default:
		return "unknown"
	}
}

// ErrUnknownPolicy is returned for unrecognised policies.
var ErrUnknownPolicy = errors.New("reorder: unknown policy")

// Compute returns the permutation perm[old] = new for the policy.
func Compute(g *graph.Graph, policy Policy) ([]graph.NodeID, error) {
	switch policy {
	case DegreeSort:
		return degreeSort(g), nil
	case BFSOrder:
		order := bfsOrder(g, false)
		return orderToPerm(order), nil
	case RCM:
		order := bfsOrder(g, true)
		// Reverse the visit order.
		for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
			order[i], order[j] = order[j], order[i]
		}
		return orderToPerm(order), nil
	default:
		return nil, ErrUnknownPolicy
	}
}

// Apply relabels g by the policy and returns the reordered graph plus the
// permutation used.
func Apply(g *graph.Graph, policy Policy) (*graph.Graph, []graph.NodeID, error) {
	perm, err := Compute(g, policy)
	if err != nil {
		return nil, nil, err
	}
	rg, err := graph.PermuteNodes(g, perm)
	if err != nil {
		return nil, nil, err
	}
	return rg, perm, nil
}

// degreeSort renumbers by descending degree, stable by old ID.
func degreeSort(g *graph.Graph) []graph.NodeID {
	n := g.NumNodes()
	order := make([]graph.NodeID, n)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	degs := g.Degrees()
	sort.SliceStable(order, func(a, b int) bool {
		return degs[order[a]] > degs[order[b]]
	})
	return orderToPerm(order)
}

// bfsOrder returns vertices in BFS discovery order from the highest-degree
// vertex of each component; with sortedNeighbors, neighbours enqueue in
// ascending-degree order (the Cuthill-McKee rule).
func bfsOrder(g *graph.Graph, sortedNeighbors bool) []graph.NodeID {
	n := g.NumNodes()
	visited := make([]bool, n)
	order := make([]graph.NodeID, 0, n)
	degs := g.Degrees()

	// Component seeds: lowest degree first per Cuthill-McKee; the plain
	// BFS policy uses highest degree (hub-first locality).
	seeds := make([]graph.NodeID, n)
	for i := range seeds {
		seeds[i] = graph.NodeID(i)
	}
	sort.SliceStable(seeds, func(a, b int) bool {
		if sortedNeighbors {
			return degs[seeds[a]] < degs[seeds[b]]
		}
		return degs[seeds[a]] > degs[seeds[b]]
	})

	queue := make([]graph.NodeID, 0, n)
	nbrBuf := make([]graph.NodeID, 0, 16)
	for _, s := range seeds {
		if visited[s] {
			continue
		}
		visited[s] = true
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			nbrBuf = append(nbrBuf[:0], g.Neighbors(v)...)
			if sortedNeighbors {
				sort.SliceStable(nbrBuf, func(a, b int) bool {
					return degs[nbrBuf[a]] < degs[nbrBuf[b]]
				})
			}
			for _, u := range nbrBuf {
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	return order
}

// orderToPerm converts a visit order (order[i] = old vertex at new slot i)
// into a permutation perm[old] = new.
func orderToPerm(order []graph.NodeID) []graph.NodeID {
	perm := make([]graph.NodeID, len(order))
	for newID, old := range order {
		perm[old] = graph.NodeID(newID)
	}
	return perm
}

// Bandwidth returns the adjacency bandwidth max|u−v| over edges — the
// quantity RCM minimises; smaller means neighbours live closer in memory.
func Bandwidth(g *graph.Graph) int {
	bw := 0
	for _, e := range g.Edges() {
		d := int(e.Src) - int(e.Dst)
		if d < 0 {
			d = -d
		}
		if d > bw {
			bw = d
		}
	}
	return bw
}

// MeanNeighborDistance returns the average |u−v| over edges, a smoother
// locality proxy than Bandwidth.
func MeanNeighborDistance(g *graph.Graph) float64 {
	if g.NumEdges() == 0 {
		return 0
	}
	total := 0.0
	for _, e := range g.Edges() {
		d := int(e.Src) - int(e.Dst)
		if d < 0 {
			d = -d
		}
		total += float64(d)
	}
	return total / float64(g.NumEdges())
}

// GatherCost replays one aggregation pass through a fresh simulated GPU
// and returns the cycle cost — the apples-to-apples locality comparison
// between orderings. Directed edges are sorted by destination first (the
// cub sort every engine performs), so the receiver stream is sequential
// and the ordering's quality shows in whether the *sender* accesses land
// near it — exactly the effect node renumbering targets.
func GatherCost(g *graph.Graph, dim int) float64 {
	sim := gpusim.New(gpusim.GTX1080())
	rowBytes := int64(dim) * 4
	base := sim.Alloc(int64(g.NumNodes()) * rowBytes)
	type pair struct{ dst, src graph.NodeID }
	pairs := make([]pair, 0, 2*g.NumEdges())
	for _, e := range g.Edges() {
		pairs = append(pairs, pair{dst: e.Dst, src: e.Src}, pair{dst: e.Src, src: e.Dst})
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].dst != pairs[b].dst {
			return pairs[a].dst < pairs[b].dst
		}
		return pairs[a].src < pairs[b].src
	})
	dst := make([]int32, len(pairs))
	src := make([]int32, len(pairs))
	for i, p := range pairs {
		dst[i] = p.dst
		src[i] = p.src
	}
	sim.GatherRows("gather", base, dst, rowBytes)
	sim.GatherRows("gather", base, src, rowBytes)
	return sim.TotalCycles()
}
