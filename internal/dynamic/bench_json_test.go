package dynamic

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"mega/internal/graph"
	"mega/internal/models"
)

// TestWriteBenchDynamic regenerates BENCH_dynamic.json: incremental repair
// (Maintainer.ApplyBatch) versus full re-preprocessing (models.PrepareMega
// of the mutated graph) over the same mutation stream, at several batch
// sizes and two mutation mixes. "uniform" draws endpoints from the whole
// vertex set; "localized" draws them from the quarter of vertices the
// traversal reaches last, the regime prefix replay is built for
// (growth-style workloads mutate around recent vertices, which the
// preferential traversal reaches late). Gated behind BENCH_DYNAMIC_OUT so
// `go test ./...` stays fast; run via `make bench-dynamic`.
func TestWriteBenchDynamic(t *testing.T) {
	out := os.Getenv("BENCH_DYNAMIC_OUT")
	if out == "" {
		t.Skip("set BENCH_DYNAMIC_OUT=<path> to run the dynamic bench (make bench-dynamic)")
	}

	const (
		numNodes = 2000
		baDegree = 3
		updates  = 30
	)
	opts := models.MegaOptions{}

	type row struct {
		Scenario           string  `json:"scenario"`
		Batch              int     `json:"batch"`
		IncrementalNs      int64   `json:"incremental_ns_per_update"`
		RebuildNs          int64   `json:"rebuild_ns_per_update"`
		Speedup            float64 `json:"speedup"`
		Splices            int     `json:"splices"`
		Rebuilds           int     `json:"rebuilds"`
		MeanPrefixFraction float64 `json:"mean_prefix_fraction"`
	}
	var rows []row

	for _, scenario := range []string{"uniform", "localized"} {
		for _, batch := range []int{1, 2, 4, 8} {
			rng := rand.New(rand.NewSource(7))
			g := graph.BarabasiAlbert(rng, numNodes, baDegree)
			m, err := NewMaintainer(g, opts.TraverseOptions())
			if err != nil {
				t.Fatal(err)
			}
			var (
				incrNs, rebuildNs time.Duration
				splices, rebuilds int
				prefixFrac        float64
				splicesWithPrefix int
			)
			for i := 0; i < updates; i++ {
				pool := mutationPool(m, scenario)
				rm, ad := growBatch(rng, m, pool, batch)
				if len(rm)+len(ad) == 0 {
					t.Fatalf("%s/batch=%d: could not grow a mutation batch", scenario, batch)
				}

				start := time.Now()
				reps, err := m.ApplyBatch(rm, ad)
				incrNs += time.Since(start)
				if err != nil {
					t.Fatalf("%s/batch=%d update %d: %v", scenario, batch, i, err)
				}
				for _, r := range reps {
					switch r.Kind {
					case RepairSplice:
						splices++
						if r.PathRows > 0 {
							prefixFrac += float64(r.PrefixRows) / float64(r.PathRows)
							splicesWithPrefix++
						}
					case RepairRebuild:
						rebuilds++
					}
				}

				// Baseline: a full re-preprocess of the identical
				// post-batch graph, what a server without the mutation
				// subsystem pays per update.
				start = time.Now()
				if _, err := models.PrepareMega(m.Graph(), opts); err != nil {
					t.Fatal(err)
				}
				rebuildNs += time.Since(start)
			}
			if msg := canonicalMismatch(m); msg != "" {
				t.Fatalf("%s/batch=%d: %s", scenario, batch, msg)
			}
			r := row{
				Scenario:      scenario,
				Batch:         batch,
				IncrementalNs: incrNs.Nanoseconds() / updates,
				RebuildNs:     rebuildNs.Nanoseconds() / updates,
				Splices:       splices,
				Rebuilds:      rebuilds,
			}
			r.Speedup = float64(r.RebuildNs) / float64(r.IncrementalNs)
			if splicesWithPrefix > 0 {
				prefixFrac /= float64(splicesWithPrefix)
			}
			r.MeanPrefixFraction = prefixFrac
			rows = append(rows, r)
			t.Logf("%-9s batch=%d  incremental %7.2fms  rebuild %7.2fms  speedup %.2fx  (%d splices / %d rebuilds)",
				scenario, batch, float64(r.IncrementalNs)/1e6, float64(r.RebuildNs)/1e6, r.Speedup, splices, rebuilds)
		}
	}

	best, uniform1 := 0.0, 0.0
	worst := 1e18
	for _, r := range rows {
		if r.Speedup > best {
			best = r.Speedup
		}
		if r.Speedup < worst {
			worst = r.Speedup
		}
		if r.Scenario == "uniform" && r.Batch == 1 {
			uniform1 = r.Speedup
		}
	}
	if best <= 1.0 {
		t.Errorf("no configuration beat full re-preprocessing (best speedup %.2fx)", best)
	}

	doc := map[string]any{
		"description": fmt.Sprintf(
			"Incremental path-representation repair (dynamic.Maintainer.ApplyBatch, one fused "+
				"prefix-replay/suffix-resume per batch) vs full re-preprocessing (models.PrepareMega "+
				"of the identical mutated graph) on a Barabási–Albert graph, n=%d, m=%d, %d updates "+
				"per configuration. \"uniform\" mutations draw endpoints anywhere; \"localized\" draws "+
				"them from the quarter of vertices the traversal reaches last — the regime "+
				"prefix replay targets. Both sides produce bit-identical representations "+
				"(FuzzMaintainerEquivalence, TestPredictionBitIdentity). Regenerate with "+
				"`make bench-dynamic`.", numNodes, baDegree, updates),
		"machine": map[string]any{
			"goos":    runtime.GOOS,
			"goarch":  runtime.GOARCH,
			"cpu":     cpuModel(),
			"num_cpu": runtime.NumCPU(),
		},
		"date":               time.Now().Format("2006-01-02"),
		"updates_per_config": updates,
		"results":            rows,
		"summary": map[string]any{
			"best_speedup":           round2(best),
			"worst_speedup":          round2(worst),
			"uniform_batch1_speedup": round2(uniform1),
			"note": "Uniform mutations spread endpoints across the traversal, so the fused repair " +
				"degrades to ~one rebuild per batch (speedup ≈ 1 regardless of batch size — never " +
				"k rebuilds). Localized mutations keep the replayable prefix long, so splices " +
				"dominate and the suffix decision loop is the only real cost.",
		},
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

// mutationPool returns the vertices a scenario may pick endpoints from.
func mutationPool(m *Maintainer, scenario string) []graph.NodeID {
	if scenario == "uniform" {
		pool := make([]graph.NodeID, m.Graph().NumNodes())
		for v := range pool {
			pool[v] = graph.NodeID(v)
		}
		return pool
	}
	// localized: the quarter of vertices the traversal reaches last
	// (ranked by first-occurrence position). Recomputed per update since
	// repairs move positions.
	rep := m.Rep()
	order := make([]graph.NodeID, 0, len(rep.Positions))
	for v, pos := range rep.Positions {
		if len(pos) > 0 {
			order = append(order, graph.NodeID(v))
		}
	}
	sort.Slice(order, func(i, j int) bool {
		return rep.Positions[order[i]][0] > rep.Positions[order[j]][0]
	})
	return order[:len(order)/4]
}

// growBatch assembles a valid batch of exactly k mutations (~3:1
// add:remove) with endpoints drawn from pool.
func growBatch(rng *rand.Rand, m *Maintainer, pool []graph.NodeID, k int) (rm, ad [][2]graph.NodeID) {
	g := m.Graph()
	for attempt := 0; attempt < 200*k && len(rm)+len(ad) < k; attempt++ {
		u := pool[rng.Intn(len(pool))]
		v := pool[rng.Intn(len(pool))]
		if u == v {
			continue
		}
		e := [2]graph.NodeID{u, v}
		if g.HasEdge(u, v) && attempt%4 == 3 {
			if m.ValidateBatch(append(rm, e), ad) == nil {
				rm = append(rm, e)
			}
		} else if !g.HasEdge(u, v) {
			if m.ValidateBatch(rm, append(ad, e)) == nil {
				ad = append(ad, e)
			}
		}
	}
	return rm, ad
}

func cpuModel() string {
	buf, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(buf), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}

func round2(x float64) float64 { return float64(int64(x*100+0.5)) / 100 }
