package dynamic

import (
	"math"
	"math/rand"
	"testing"

	"mega/internal/band"
	"mega/internal/datasets"
	"mega/internal/graph"
	"mega/internal/models"
	"mega/internal/traverse"
)

// FuzzMaintainerEquivalence drives random AddEdge/RemoveEdge sequences —
// including removals of spliced-in and in-band edges — and asserts the
// maintained rep is byte-identical to a from-scratch rebuild of the final
// graph. This is the corpus the dynamic-check CI gate runs.
func FuzzMaintainerEquivalence(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add(int64(42), []byte{1, 1, 1, 1, 0, 0, 0, 0, 9, 9})
	f.Add(int64(-7), []byte{255, 128, 64, 32, 16, 8, 4, 2, 1, 0, 3, 5})
	f.Add(int64(2026), []byte{10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120, 130, 140})
	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + int(uint64(seed)%10)
		g := graph.ErdosRenyiM(rng, n, 2*n)
		m, err := NewMaintainer(g, traverse.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if len(ops) > 64 {
			ops = ops[:64]
		}
		for _, b := range ops {
			if b&16 != 0 {
				// Fused multi-mutation batch: grow a batch greedily,
				// keeping only mutations the batch validator accepts, then
				// apply it through the single-repair path.
				var rm, ad [][2]graph.NodeID
				for j := 0; j < int(b&7)+2; j++ {
					u := graph.NodeID(rng.Intn(n))
					v := graph.NodeID(rng.Intn(n))
					if u == v {
						continue
					}
					e := [2]graph.NodeID{u, v}
					if j&1 == 0 {
						if m.ValidateBatch(rm, append(ad, e)) == nil {
							ad = append(ad, e)
						}
					} else {
						if m.ValidateBatch(append(rm, e), ad) == nil {
							rm = append(rm, e)
						}
					}
				}
				if _, err := m.ApplyBatch(rm, ad); err != nil {
					t.Fatalf("validated batch rejected: %v", err)
				}
			} else {
				u := graph.NodeID(rng.Intn(n))
				v := graph.NodeID(rng.Intn(n))
				if u == v {
					continue
				}
				if b&1 == 0 {
					_, err = m.AddEdge(u, v)
				} else {
					_, err = m.RemoveEdge(u, v)
				}
				if err != nil {
					continue // duplicate/missing edges are expected misses
				}
			}
			if b&7 == 7 {
				// Occasionally check mid-stream, not only at the end.
				if msg := canonicalMismatch(m); msg != "" {
					t.Fatalf("mid-stream: %s", msg)
				}
			}
		}
		if msg := canonicalMismatch(m); msg != "" {
			t.Fatal(msg)
		}
	})
}

// buildInstance wraps the maintainer's live graph with all-zero categorical
// features sized to the current edge list.
func buildInstance(m *Maintainer) datasets.Instance {
	g := m.Graph()
	return datasets.Instance{
		G:        g,
		NodeFeat: make([]int32, g.NumNodes()),
		EdgeFeat: make([]int32, g.NumEdges()),
	}
}

func forwardWith(t *testing.T, model *models.GT, inst datasets.Instance, prep *models.PreparedRep) []float64 {
	t.Helper()
	ctx, err := models.NewMegaContextFromReps(
		[]datasets.Instance{inst}, []*models.PreparedRep{prep}, nil, model.Config().Dim)
	if err != nil {
		t.Fatal(err)
	}
	out := model.Forward(ctx)
	return append([]float64(nil), out.Data...)
}

func forwardSharded(t *testing.T, model *models.GT, inst datasets.Instance, prep *models.PreparedRep, workers int) []float64 {
	t.Helper()
	ctx, err := models.NewMegaContextFromReps(
		[]datasets.Instance{inst}, []*models.PreparedRep{prep}, nil, model.Config().Dim)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := models.NewShardEngine(model, ctx, workers)
	if err != nil {
		t.Fatal(err)
	}
	out := eng.Forward()
	return append([]float64(nil), out.Data...)
}

func assertBitsEqual(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d outputs, want %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: output %d = %x, want %x (values %g vs %g)",
				label, i, math.Float64bits(got[i]), math.Float64bits(want[i]), got[i], want[i])
		}
	}
}

// TestPredictionBitIdentity is the acceptance criterion end to end at the
// model layer: after a random mutation stream, predictions on the repaired
// rep are bit-identical (Float64bits) to predictions on a full
// re-preprocess of the mutated graph — for both the monolithic and sharded
// engines.
func TestPredictionBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := graph.BarabasiAlbert(rng, 80, 2)
	opts := models.MegaOptions{}
	m, err := NewMaintainer(g, opts.TraverseOptions())
	if err != nil {
		t.Fatal(err)
	}
	splices := 0
	for i := 0; i < 40; i++ {
		u := graph.NodeID(rng.Intn(80))
		v := graph.NodeID(rng.Intn(80))
		if u == v {
			continue
		}
		var rep Repair
		if rng.Intn(3) == 0 {
			rep, err = m.RemoveEdge(u, v)
		} else {
			rep, err = m.AddEdge(u, v)
		}
		if err != nil {
			continue
		}
		if rep.Kind == RepairSplice {
			splices++
		}
	}
	if splices == 0 {
		t.Log("warning: mutation stream produced no splices; identity still checked")
	}

	model := models.NewGT(models.Config{
		Dim: 16, Layers: 2, Heads: 2, NodeTypes: 4, EdgeTypes: 4, OutDim: 1, Seed: 5,
	})
	inst := buildInstance(m)
	maintained := &models.PreparedRep{Rep: m.Rep(), Res: m.Result()}
	fresh, err := models.PrepareMega(m.Graph(), opts)
	if err != nil {
		t.Fatal(err)
	}

	got := forwardWith(t, model, inst, maintained)
	want := forwardWith(t, model, inst, fresh)
	assertBitsEqual(t, "monolithic", got, want)

	gotSharded := forwardSharded(t, model, inst, maintained, 2)
	wantSharded := forwardSharded(t, model, inst, fresh, 2)
	assertBitsEqual(t, "sharded(maintained vs fresh)", gotSharded, wantSharded)
	assertBitsEqual(t, "sharded vs monolithic", gotSharded, want)
}

// TestAdoptedRepPredictionIdentity mirrors the serving flow: adopt a cached
// PreparedRep, mutate, and compare against a full re-preprocess.
func TestAdoptedRepPredictionIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.BarabasiAlbert(rng, 60, 2)
	opts := models.MegaOptions{}
	prep, err := models.PrepareMega(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Adopt(prep.Rep, prep.Res, opts.TraverseOptions(), Policy{})
	if err != nil {
		t.Fatal(err)
	}
	var adds [][2]graph.NodeID
	for u := graph.NodeID(0); len(adds) < 2 && u < 60; u++ {
		for v := u + 1; len(adds) < 2 && v < 60; v++ {
			if !g.HasEdge(u, v) {
				adds = append(adds, [2]graph.NodeID{u, v})
			}
		}
	}
	e0 := g.EdgeAt(0)
	if _, err := m.ApplyBatch([][2]graph.NodeID{{e0.Src, e0.Dst}}, adds); err != nil {
		t.Fatal(err)
	}
	checkCanonical(t, m)

	model := models.NewGT(models.Config{
		Dim: 16, Layers: 1, Heads: 2, NodeTypes: 4, EdgeTypes: 4, OutDim: 1, Seed: 9,
	})
	inst := buildInstance(m)
	fresh, err := models.PrepareMega(m.Graph(), opts)
	if err != nil {
		t.Fatal(err)
	}
	got := forwardWith(t, model, inst, &models.PreparedRep{Rep: m.Rep(), Res: m.Result()})
	want := forwardWith(t, model, inst, fresh)
	assertBitsEqual(t, "adopted", got, want)
}

// TestSpliceMatchesBuild pins band.Splice against band.Build directly on a
// replayed traversal, independent of the maintainer.
func TestSpliceMatchesBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	g := graph.ErdosRenyiM(rng, 40, 90)
	opts := traverse.DefaultOptions()
	m, err := NewMaintainer(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		u := graph.NodeID(rng.Intn(40))
		v := graph.NodeID(rng.Intn(40))
		if u == v {
			continue
		}
		_, _ = m.AddEdge(u, v)
		_, _ = m.RemoveEdge(graph.NodeID(rng.Intn(40)), graph.NodeID(rng.Intn(40)))
	}
	built, err := band.Build(m.Graph(), m.Result(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rep().CoveredEdges != built.CoveredEdges || m.Rep().Len() != built.Len() {
		t.Fatal("maintained rep disagrees with direct Build of its own traversal")
	}
}
