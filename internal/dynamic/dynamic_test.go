package dynamic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mega/internal/band"
	"mega/internal/graph"
	"mega/internal/traverse"
)

func newMaintainer(t *testing.T, g *graph.Graph) *Maintainer {
	t.Helper()
	m, err := NewMaintainer(g, traverse.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// checkRepConsistency validates that the live representation's band exactly
// matches the live graph's edges.
func checkRepConsistency(t *testing.T, m *Maintainer) {
	t.Helper()
	g, err := m.Graph()
	if err != nil {
		t.Fatal(err)
	}
	rep := m.Rep()
	covered := make(map[[2]graph.NodeID]bool)
	for o := 1; o <= rep.Window; o++ {
		for i, on := range rep.Mask[o-1] {
			if !on {
				continue
			}
			u, v := rep.Path[i], rep.Path[i+o]
			if !g.HasEdge(u, v) {
				t.Fatalf("band contains non-edge (%d,%d)", u, v)
			}
			covered[canon(u, v)] = true
		}
	}
	for _, e := range g.Edges() {
		if !covered[canon(e.Src, e.Dst)] {
			t.Fatalf("live edge (%d,%d) missing from band", e.Src, e.Dst)
		}
	}
	// Positions index must be consistent.
	for v := range rep.Positions {
		for _, p := range rep.Positions[v] {
			if rep.Path[p] != graph.NodeID(v) {
				t.Fatalf("positions index corrupt at vertex %d", v)
			}
		}
	}
}

func TestAddEdgeInBand(t *testing.T) {
	// Path graph 0-1-2-3: vertices 0 and 2 sit two positions apart; with
	// window >= 2 the new edge (0,2) lands in band.
	g := graph.Path(4)
	m, err := NewMaintainer(g, traverse.Options{Window: 2, EdgeCoverage: 1, Start: 0})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.AddEdge(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != RepairInBand {
		t.Errorf("repair kind = %v, want in-band", rep.Kind)
	}
	if m.Rep().Expansion() != 1 {
		t.Errorf("in-band repair should not grow the path")
	}
	checkRepConsistency(t, m)
}

func TestAddEdgePatch(t *testing.T) {
	// Long path graph: connecting the two ends is far outside the band.
	g := graph.Path(20)
	m, err := NewMaintainer(g, traverse.Options{Window: 1, EdgeCoverage: 1, Start: 0})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.AddEdge(0, 19)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != RepairPatch {
		t.Errorf("repair kind = %v, want patch", rep.Kind)
	}
	if m.Patches() != 1 {
		t.Errorf("patches = %d, want 1", m.Patches())
	}
	checkRepConsistency(t, m)
}

func TestAddEdgeValidation(t *testing.T) {
	g := graph.Path(4)
	m := newMaintainer(t, g)
	if _, err := m.AddEdge(0, 9); err == nil {
		t.Error("out-of-range vertex should error")
	}
	if _, err := m.AddEdge(2, 2); err == nil {
		t.Error("self loop should error")
	}
	if _, err := m.AddEdge(0, 1); err == nil {
		t.Error("duplicate edge should error")
	}
}

func TestRemoveEdge(t *testing.T) {
	g := graph.Cycle(6)
	m := newMaintainer(t, g)
	before := m.NumEdges()
	rep, err := m.RemoveEdge(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != RepairClear || rep.TouchedSlots == 0 {
		t.Errorf("repair = %+v, want clear with touched slots", rep)
	}
	if m.NumEdges() != before-1 {
		t.Errorf("edges = %d, want %d", m.NumEdges(), before-1)
	}
	checkRepConsistency(t, m)
	if _, err := m.RemoveEdge(0, 1); err == nil {
		t.Error("double removal should error")
	}
}

func TestReAddRemovedEdge(t *testing.T) {
	g := graph.Cycle(6)
	m := newMaintainer(t, g)
	if _, err := m.RemoveEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddEdge(2, 3); err != nil {
		t.Fatalf("re-adding removed edge: %v", err)
	}
	checkRepConsistency(t, m)
}

func TestExpansionBudgetTriggersRebuild(t *testing.T) {
	g := graph.Path(10)
	m, err := NewMaintainer(g, traverse.Options{Window: 1, EdgeCoverage: 1, Start: 0})
	if err != nil {
		t.Fatal(err)
	}
	m.ExpansionBudget = 1.3
	sawRebuild := false
	// Far-apart insertions force patches until the budget trips.
	adds := [][2]graph.NodeID{{0, 9}, {0, 8}, {1, 9}, {0, 7}, {2, 9}, {1, 7}}
	for _, e := range adds {
		rep, err := m.AddEdge(e[0], e[1])
		if err != nil {
			t.Fatal(err)
		}
		if rep.Kind == RepairRebuild {
			sawRebuild = true
			break
		}
	}
	if !sawRebuild {
		t.Error("expansion budget never triggered a rebuild")
	}
	if m.Rebuilds() == 0 {
		t.Error("rebuild counter not incremented")
	}
	checkRepConsistency(t, m)
}

func TestManualRebuildCompacts(t *testing.T) {
	g := graph.Path(12)
	m, err := NewMaintainer(g, traverse.Options{Window: 1, EdgeCoverage: 1, Start: 0})
	if err != nil {
		t.Fatal(err)
	}
	m.ExpansionBudget = 100 // never auto-rebuild
	if _, err := m.AddEdge(0, 11); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddEdge(1, 10); err != nil {
		t.Fatal(err)
	}
	grown := m.Rep().Len()
	if err := m.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if m.Rep().Len() >= grown {
		t.Errorf("rebuild should compact: %d -> %d", grown, m.Rep().Len())
	}
	if m.Patches() != 0 {
		t.Error("rebuild should clear patch counter")
	}
	checkRepConsistency(t, m)
}

func TestMaintainerRepUsableDownstream(t *testing.T) {
	// The maintained representation must stay loadable by band consumers:
	// coverage accounting, sync groups, gather index.
	rng := rand.New(rand.NewSource(3))
	g := graph.ErdosRenyiM(rng, 25, 40)
	m := newMaintainer(t, g)
	for i := 0; i < 10; i++ {
		u := graph.NodeID(rng.Intn(25))
		v := graph.NodeID(rng.Intn(25))
		if u == v {
			continue
		}
		if _, err := m.AddEdge(u, v); err != nil {
			continue // duplicates are fine to skip
		}
	}
	rep := m.Rep()
	if rep.BandCoverage() <= 0 {
		t.Error("band coverage collapsed")
	}
	if got := len(rep.GatherIndex()); got != rep.Len() {
		t.Errorf("gather index len %d != path len %d", got, rep.Len())
	}
	checkRepConsistency(t, m)
}

// Property: after arbitrary interleaved adds/removes, the band exactly
// matches the live edge set.
func TestMaintainerConsistencyProperty(t *testing.T) {
	f := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.ErdosRenyiM(rng, 12, 18)
		m, err := NewMaintainer(g, traverse.DefaultOptions())
		if err != nil {
			return false
		}
		ops := int(opsRaw%20) + 5
		for i := 0; i < ops; i++ {
			u := graph.NodeID(rng.Intn(12))
			v := graph.NodeID(rng.Intn(12))
			if u == v {
				continue
			}
			if rng.Intn(2) == 0 {
				_, _ = m.AddEdge(u, v)
			} else {
				_, _ = m.RemoveEdge(u, v)
			}
		}
		lg, err := m.Graph()
		if err != nil {
			return false
		}
		rep := m.Rep()
		covered := make(map[[2]graph.NodeID]bool)
		for o := 1; o <= rep.Window; o++ {
			for i, on := range rep.Mask[o-1] {
				if !on {
					continue
				}
				u, v := rep.Path[i], rep.Path[i+o]
				if !lg.HasEdge(u, v) {
					return false
				}
				covered[canon(u, v)] = true
			}
		}
		for _, e := range lg.Edges() {
			if !covered[canon(e.Src, e.Dst)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRepairKindStrings(t *testing.T) {
	want := map[RepairKind]string{
		RepairInBand: "in-band", RepairPatch: "patch",
		RepairRebuild: "rebuild", RepairClear: "clear",
		RepairKind(0): "RepairKind(0)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

// BenchmarkIncrementalVsRebuild quantifies the latency win of incremental
// repair over full re-traversal — the reason this package exists.
func BenchmarkIncrementalVsRebuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.BarabasiAlbert(rng, 2000, 3)
	b.Run("incremental", func(b *testing.B) {
		m, err := NewMaintainer(g, traverse.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		m.ExpansionBudget = 1e9
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			u := graph.NodeID(rng.Intn(2000))
			v := graph.NodeID(rng.Intn(2000))
			if u == v {
				continue
			}
			if _, err := m.AddEdge(u, v); err != nil {
				continue
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := band.FromGraph(g, traverse.DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
}
