package dynamic

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mega/internal/band"
	"mega/internal/graph"
	"mega/internal/traverse"
)

func newMaintainer(t *testing.T, g *graph.Graph) *Maintainer {
	t.Helper()
	m, err := NewMaintainer(g, traverse.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// checkCanonical verifies the maintainer's core invariant: its Rep/Result
// pair is byte-identical to a from-scratch preprocess of the live graph.
func checkCanonical(t *testing.T, m *Maintainer) {
	t.Helper()
	if msg := canonicalMismatch(m); msg != "" {
		t.Fatal(msg)
	}
}

func canonicalMismatch(m *Maintainer) string {
	fresh, freshRes, err := band.FromGraph(m.Graph(), m.opts)
	if err != nil {
		return "fresh preprocess failed: " + err.Error()
	}
	rep := m.Rep()
	if !reflect.DeepEqual(rep.Path, fresh.Path) {
		return "path differs from fresh preprocess"
	}
	if rep.Window != fresh.Window || rep.NumNodes != fresh.NumNodes ||
		rep.CoveredEdges != fresh.CoveredEdges || rep.TotalEdges != fresh.TotalEdges {
		return "rep scalars differ from fresh preprocess"
	}
	if !reflect.DeepEqual(rep.Mask, fresh.Mask) {
		return "band mask differs from fresh preprocess"
	}
	if !reflect.DeepEqual(rep.EdgeID, fresh.EdgeID) {
		return "band edge IDs differ from fresh preprocess"
	}
	if !reflect.DeepEqual(rep.Positions, fresh.Positions) {
		return "positions index differs from fresh preprocess"
	}
	res := m.Result()
	if !reflect.DeepEqual(res.Path, freshRes.Path) ||
		!reflect.DeepEqual(res.Virtual, freshRes.Virtual) ||
		!reflect.DeepEqual(res.Source, freshRes.Source) {
		return "traversal trace differs from fresh preprocess"
	}
	if res.CoveredEdges != freshRes.CoveredEdges || res.Revisits != freshRes.Revisits ||
		res.VirtualEdges != freshRes.VirtualEdges {
		return "traversal stats differ from fresh preprocess"
	}
	// EdgeRefs order is load-bearing for shard edge ownership.
	if !reflect.DeepEqual(rep.EdgeRefs(), fresh.EdgeRefs()) {
		return "EdgeRefs order differs from fresh preprocess"
	}
	return ""
}

func TestAddEdgeCanonical(t *testing.T) {
	g := graph.Path(30)
	m, err := NewMaintainer(g, traverse.Options{Window: 2, EdgeCoverage: 1, Start: 0})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.AddEdge(10, 14)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != RepairSplice && rep.Kind != RepairRebuild {
		t.Errorf("repair kind = %v", rep.Kind)
	}
	if m.NumEdges() != 30 {
		t.Errorf("edges = %d, want 30", m.NumEdges())
	}
	checkCanonical(t, m)
}

func TestSpliceReplaysPrefix(t *testing.T) {
	// A long path with a far-from-start mutation should replay a long
	// prefix instead of re-deciding everything.
	g := graph.Path(400)
	m, err := NewMaintainer(g, traverse.Options{Window: 2, EdgeCoverage: 1, Start: 0})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.AddEdge(300, 350)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != RepairSplice {
		t.Fatalf("repair kind = %v (%s), want splice", rep.Kind, rep.Reason)
	}
	if rep.PrefixRows == 0 {
		t.Error("splice replayed no prefix")
	}
	if m.Splices() != 1 {
		t.Errorf("splices = %d, want 1", m.Splices())
	}
	checkCanonical(t, m)
}

func TestAddEdgeValidation(t *testing.T) {
	g := graph.Path(4)
	m := newMaintainer(t, g)
	if _, err := m.AddEdge(0, 9); !errors.Is(err, ErrVertexRange) {
		t.Errorf("out-of-range vertex: %v", err)
	}
	if _, err := m.AddEdge(2, 2); !errors.Is(err, ErrSelfLoop) {
		t.Errorf("self loop: %v", err)
	}
	if _, err := m.AddEdge(0, 1); !errors.Is(err, ErrEdgeExists) {
		t.Errorf("duplicate edge: %v", err)
	}
}

func TestRemoveEdge(t *testing.T) {
	g := graph.Cycle(6)
	m := newMaintainer(t, g)
	before := m.NumEdges()
	if _, err := m.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if m.NumEdges() != before-1 {
		t.Errorf("edges = %d, want %d", m.NumEdges(), before-1)
	}
	checkCanonical(t, m)
	if _, err := m.RemoveEdge(0, 1); !errors.Is(err, ErrEdgeMissing) {
		t.Errorf("double removal: %v", err)
	}
}

func TestRemoveInBandAndSplicedEdges(t *testing.T) {
	// Remove an edge captured by the original build, then an edge that
	// arrived through a splice — both must leave a canonical rep.
	g := graph.Cycle(40)
	m := newMaintainer(t, g)
	if _, err := m.AddEdge(5, 20); err != nil {
		t.Fatal(err)
	}
	checkCanonical(t, m)
	if _, err := m.RemoveEdge(5, 20); err != nil { // spliced-in edge
		t.Fatal(err)
	}
	checkCanonical(t, m)
	if _, err := m.RemoveEdge(10, 11); err != nil { // original in-band edge
		t.Fatal(err)
	}
	checkCanonical(t, m)
}

func TestReAddRemovedEdge(t *testing.T) {
	g := graph.Cycle(6)
	m := newMaintainer(t, g)
	if _, err := m.RemoveEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddEdge(2, 3); err != nil {
		t.Fatalf("re-adding removed edge: %v", err)
	}
	checkCanonical(t, m)
}

func TestBatchAtomicity(t *testing.T) {
	g := graph.Cycle(8)
	m := newMaintainer(t, g)
	repBefore := m.Rep()
	edgesBefore := m.NumEdges()
	// Second add is invalid (already present), so nothing must apply.
	_, err := m.ApplyBatch(nil, [][2]graph.NodeID{{0, 2}, {3, 4}})
	if !errors.Is(err, ErrEdgeExists) {
		t.Fatalf("batch error = %v, want ErrEdgeExists", err)
	}
	if m.Rep() != repBefore || m.NumEdges() != edgesBefore {
		t.Error("rejected batch mutated the maintainer")
	}
	// Valid batch: removes apply before adds, so an edge can move. The
	// three mutations are absorbed by one fused repair.
	reps, err := m.ApplyBatch([][2]graph.NodeID{{0, 1}}, [][2]graph.NodeID{{0, 1}, {2, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 {
		t.Fatalf("repairs = %d, want 1 fused repair for the whole batch", len(reps))
	}
	checkCanonical(t, m)

	// A fused batch and sequential application must converge on the same
	// canonical representation (the fingerprint covers COO order).
	seq := newMaintainer(t, m.Graph())
	fused, err := NewMaintainer(m.Graph(), traverse.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	batchRemoves := [][2]graph.NodeID{{2, 7}, {1, 2}}
	batchAdds := [][2]graph.NodeID{{0, 2}, {3, 7}}
	for _, e := range batchRemoves {
		if _, err := seq.RemoveEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range batchAdds {
		if _, err := seq.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fused.ApplyBatch(batchRemoves, batchAdds); err != nil {
		t.Fatal(err)
	}
	if seq.Fingerprint() != fused.Fingerprint() {
		t.Error("fused batch produced a different canonical edge order than sequential application")
	}
	checkCanonical(t, fused)
}

func TestBatchRejectsRemoveOfBatchAdd(t *testing.T) {
	g := graph.Cycle(8)
	m := newMaintainer(t, g)
	// Removes precede adds: removing an edge only the batch introduces is
	// invalid.
	_, err := m.ApplyBatch([][2]graph.NodeID{{0, 3}}, [][2]graph.NodeID{{0, 3}})
	if !errors.Is(err, ErrEdgeMissing) {
		t.Fatalf("batch error = %v, want ErrEdgeMissing", err)
	}
}

func TestAdopt(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.ErdosRenyiM(rng, 30, 60)
	opts := traverse.DefaultOptions()
	rep, res, err := band.FromGraph(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Adopt(rep, res, opts, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rep() != rep {
		t.Error("adopt should reuse the prepared rep without re-traversing")
	}
	if _, err := m.AddEdge(0, 29); err != nil && !errors.Is(err, ErrEdgeExists) {
		t.Fatal(err)
	}
	checkCanonical(t, m)
	// The adopted structures must never be modified (copy-on-write).
	if !reflect.DeepEqual(rep.Path, res.Path) {
		t.Error("adopted rep mutated")
	}
}

func TestAdoptWithoutSourceFallsBack(t *testing.T) {
	g := graph.Cycle(10)
	opts := traverse.DefaultOptions()
	rep, res, err := band.FromGraph(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	res.Source = nil // simulate a rep produced before source recording
	m, err := Adopt(rep, res, opts, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	checkCanonical(t, m)
}

func TestUnsupportedConfigurations(t *testing.T) {
	if _, err := NewMaintainer(graph.Cycle(5), traverse.Options{DropEdges: 0.2}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("edge dropping: %v", err)
	}
	if _, err := NewMaintainer(graph.Cycle(5), traverse.Options{SparsifyFraction: 0.5}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("sparsification: %v", err)
	}
	dg, err := graph.New(3, []graph.Edge{{Src: 0, Dst: 1}}, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMaintainer(dg, traverse.DefaultOptions()); !errors.Is(err, ErrUnsupported) {
		t.Errorf("directed graph: %v", err)
	}
	lg, err := graph.New(3, []graph.Edge{{Src: 0, Dst: 0}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMaintainer(lg, traverse.DefaultOptions()); !errors.Is(err, ErrUnsupported) {
		t.Errorf("self loop: %v", err)
	}
	pg, err := graph.New(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMaintainer(pg, traverse.DefaultOptions()); !errors.Is(err, ErrUnsupported) {
		t.Errorf("parallel edge: %v", err)
	}
}

func TestPolicyForcedRebuild(t *testing.T) {
	// MinPrefixFraction above 1 makes every prefix "too short".
	g := graph.Path(50)
	m, err := NewMaintainerPolicy(g, traverse.Options{Window: 2, EdgeCoverage: 1, Start: 0},
		Policy{MinPrefixFraction: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.AddEdge(40, 45)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != RepairRebuild || rep.Reason != "short-prefix" {
		t.Errorf("repair = %+v, want short-prefix rebuild", rep)
	}
	if m.Rebuilds() != 1 {
		t.Errorf("rebuilds = %d, want 1", m.Rebuilds())
	}
	checkCanonical(t, m)
}

func TestPolicyDisabledWL(t *testing.T) {
	g := graph.Cycle(20)
	m, err := NewMaintainerPolicy(g, traverse.DefaultOptions(), Policy{WLRounds: -1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.AddEdge(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WLChanged != -1 {
		t.Errorf("WLChanged = %d with WL disabled, want -1", rep.WLChanged)
	}
	checkCanonical(t, m)
}

func TestWindowChangeTriggersRebuild(t *testing.T) {
	// A near-complete graph where one more edge moves the adaptive window
	// (mean degree crosses a rounding boundary).
	var edges []graph.Edge
	for u := graph.NodeID(0); u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			if u == 0 && v == 1 {
				continue
			}
			edges = append(edges, graph.Edge{Src: u, Dst: v})
		}
	}
	g, err := graph.New(4, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMaintainerPolicy(g, traverse.DefaultOptions(), Policy{WLRounds: -1, MinPrefixFraction: -1})
	if err != nil {
		t.Fatal(err)
	}
	oldWindow := m.Rep().Window
	rep, err := m.AddEdge(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rep().Window == oldWindow {
		t.Skip("mutation did not move the adaptive window on this graph")
	}
	if rep.Kind != RepairRebuild {
		t.Errorf("window move repaired by %v, want rebuild", rep.Kind)
	}
	checkCanonical(t, m)
}

func TestSnapshotSurvivesUpdates(t *testing.T) {
	g := graph.Cycle(30)
	m := newMaintainer(t, g)
	oldRep, oldRes := m.Rep(), m.Result()
	pathCopy := append([]graph.NodeID(nil), oldRep.Path...)
	mask0 := append([]bool(nil), oldRep.Mask[0]...)
	for i := 0; i < 5; i++ {
		if _, err := m.AddEdge(graph.NodeID(i), graph.NodeID(i+10)); err != nil {
			t.Fatal(err)
		}
	}
	if m.Rep() == oldRep {
		t.Fatal("update did not swap the rep pointer")
	}
	if !reflect.DeepEqual(oldRep.Path, pathCopy) || !reflect.DeepEqual(oldRep.Mask[0], mask0) {
		t.Error("published snapshot was mutated by later updates")
	}
	if len(oldRes.Path) != len(pathCopy) {
		t.Error("published result was mutated by later updates")
	}
}

// Property: after arbitrary interleaved adds/removes, the maintained rep is
// byte-identical to a from-scratch preprocess of the live graph.
func TestCanonicalEquivalenceProperty(t *testing.T) {
	f := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.ErdosRenyiM(rng, 14, 22)
		m, err := NewMaintainer(g, traverse.DefaultOptions())
		if err != nil {
			return false
		}
		ops := int(opsRaw%24) + 6
		for i := 0; i < ops; i++ {
			u := graph.NodeID(rng.Intn(14))
			v := graph.NodeID(rng.Intn(14))
			if u == v {
				continue
			}
			if rng.Intn(2) == 0 {
				_, _ = m.AddEdge(u, v)
			} else {
				_, _ = m.RemoveEdge(u, v)
			}
		}
		return canonicalMismatch(m) == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRepairKindStrings(t *testing.T) {
	want := map[RepairKind]string{
		RepairSplice:  "splice",
		RepairRebuild: "rebuild",
		RepairKind(0): "RepairKind(0)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

// BenchmarkIncrementalVsRebuild quantifies the latency win of incremental
// repair over full re-traversal — the reason this package exists.
func BenchmarkIncrementalVsRebuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.BarabasiAlbert(rng, 2000, 3)
	b.Run("incremental", func(b *testing.B) {
		m, err := NewMaintainer(g, traverse.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			u := graph.NodeID(rng.Intn(2000))
			v := graph.NodeID(rng.Intn(2000))
			if u == v {
				continue
			}
			if _, err := m.AddEdge(u, v); err != nil {
				continue
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := band.FromGraph(g, traverse.DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
}
