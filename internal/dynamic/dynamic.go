// Package dynamic maintains a MEGA path representation under streaming
// edge insertions and deletions — the latency-constrained scenario of the
// paper's discussion (§IV-B8: "MEGA can be applied with DYGAT, facilitates
// real-time stroke classification"). A full re-traversal costs O(m·ω);
// online updates must be cheap.
//
// The maintainer's invariant is exact: after every update its Rep/Result
// pair is byte-identical to what a from-scratch preprocess of the live
// graph would produce, so fused kernels, the shard engine, and the serving
// cache can consume repaired representations with no correctness caveats
// (predictions match a full rebuild bit for bit). Incrementality comes
// from *prefix replay*: the objective traversal of the mutated graph
// provably follows the old path up to the first appearance of a mutated
// endpoint — before either endpoint is visited or enters the trailing
// window, no candidate pool, score, or termination test can observe the
// mutation — so that prefix is replayed without candidate ranking (O(ω)
// per step via traverse.Walker.Replay) and only the suffix re-runs the
// O(deg·ω) decision loop. The band arrays are then spliced: entries whose
// position pair lies inside the replayed prefix are copied, the rest
// recomputed (band.Splice), preserving the canonical EdgeRefs ordering the
// shard planner depends on.
//
// A WL-delta check (wl.Tracker) estimates how much h-hop structure each
// mutation disturbed; updates whose label delta exceeds a threshold skip
// the replay and rebuild outright, since a structurally global change
// makes a long shared prefix unlikely. The check is a cost policy, never a
// correctness gate — splice and rebuild produce the same representation.
package dynamic

import (
	"errors"
	"fmt"

	"mega/internal/band"
	"mega/internal/graph"
	"mega/internal/traverse"
	"mega/internal/wl"
)

// RepairKind classifies how an update was absorbed.
type RepairKind int

// Repair kinds.
const (
	// RepairSplice replayed the shared path prefix and re-decided only
	// the suffix.
	RepairSplice RepairKind = iota + 1
	// RepairRebuild re-traversed the whole graph.
	RepairRebuild
)

// String implements fmt.Stringer.
func (k RepairKind) String() string {
	switch k {
	case RepairSplice:
		return "splice"
	case RepairRebuild:
		return "rebuild"
	default:
		return fmt.Sprintf("RepairKind(%d)", int(k))
	}
}

// Repair describes how one update was applied.
type Repair struct {
	Kind RepairKind
	// PrefixRows is the number of path positions replayed rather than
	// re-decided (0 for rebuilds).
	PrefixRows int
	// PathRows is the total path length after the repair.
	PathRows int
	// WLChanged is the number of final-round WL labels the mutation
	// changed, or -1 when the estimator is disabled.
	WLChanged int
	// Reason states why a rebuild was taken ("" for splices).
	Reason string
}

// Errors returned by the Maintainer.
var (
	ErrVertexRange = errors.New("dynamic: vertex out of range")
	ErrSelfLoop    = errors.New("dynamic: self loops not supported")
	ErrEdgeExists  = errors.New("dynamic: edge already present")
	ErrEdgeMissing = errors.New("dynamic: edge not present")
	// ErrUnsupported marks graphs or options outside the maintainer's
	// contract: directed graphs, duplicate or self-loop edges, and
	// edge-dropping traversals (dropping is seeded randomness over the
	// edge list, which an incremental repair cannot keep stable).
	ErrUnsupported = errors.New("dynamic: unsupported configuration")
	// ErrBroken is returned after an internal repair error has left the
	// maintainer inconsistent; the owner should discard it.
	ErrBroken = errors.New("dynamic: maintainer broken by earlier error")
)

// Policy tunes the splice-vs-rebuild decision. The zero value selects the
// defaults below; set a field negative to disable that check.
type Policy struct {
	// WLRounds is the depth h of the incremental WL-delta estimator
	// (default 2; negative disables WL tracking entirely, making
	// RebuildFraction moot).
	WLRounds int
	// RebuildFraction rebuilds outright when a mutation changes more
	// than this fraction of final-round WL labels (default 0.25).
	RebuildFraction float64
	// MinPrefixFraction rebuilds when the replayable prefix is shorter
	// than this fraction of the path — ranking candidates for nearly the
	// whole path costs the same as a rebuild (default 1/16).
	MinPrefixFraction float64
}

func (p Policy) resolved() Policy {
	if p.WLRounds == 0 {
		p.WLRounds = 2
	}
	if p.RebuildFraction == 0 {
		p.RebuildFraction = 0.25
	}
	if p.MinPrefixFraction == 0 {
		p.MinPrefixFraction = 1.0 / 16
	}
	return p
}

// Maintainer keeps a graph and its path representation in sync under
// updates. All published state (Rep, Result, Graph) is immutable: repairs
// build fresh representations and swap pointers, so a snapshot taken
// before an update stays internally consistent forever — the copy-on-write
// behaviour the serving cache relies on. A Maintainer is not safe for
// concurrent use; callers serialise access (serve wraps each session in a
// mutex).
type Maintainer struct {
	opts   traverse.Options
	policy Policy

	numNodes int
	g        *graph.Graph
	// edgeSet maps canonical (low, high) endpoint pairs to live COO
	// indices. Insertions append (existing IDs stable); deletions compact
	// order-preservingly (IDs above the victim shift down by one).
	edgeSet map[[2]graph.NodeID]int32

	rep    *band.Rep
	res    *traverse.Result
	target int // coverage target ⌊θ·m⌋ of the current rep's traversal

	tracker *wl.Tracker

	splices  int
	rebuilds int
	broken   bool
}

// NewMaintainer traverses g once and starts maintaining it under the
// default policy.
func NewMaintainer(g *graph.Graph, opts traverse.Options) (*Maintainer, error) {
	return NewMaintainerPolicy(g, opts, Policy{})
}

// NewMaintainerPolicy is NewMaintainer with an explicit repair policy.
func NewMaintainerPolicy(g *graph.Graph, opts traverse.Options, policy Policy) (*Maintainer, error) {
	m, err := newShell(g, opts, policy)
	if err != nil {
		return nil, err
	}
	w, err := traverse.NewWalker(g, opts)
	if err != nil {
		return nil, err
	}
	res := w.Complete()
	rep, err := band.Build(res.Graph, res, 0)
	if err != nil {
		return nil, err
	}
	m.commit(res.Graph, rep, res, w.Target())
	return m, nil
}

// Adopt starts maintaining an already-preprocessed representation without
// re-traversing: rep and res must be the preprocess output for res.Graph
// under exactly opts (the serving cache's PreparedRep contract). The
// adopted structures are treated as immutable and never modified. If res
// predates step-source recording, Adopt falls back to one fresh traversal.
func Adopt(rep *band.Rep, res *traverse.Result, opts traverse.Options, policy Policy) (*Maintainer, error) {
	if rep == nil || res == nil || res.Graph == nil {
		return nil, fmt.Errorf("%w: adopt requires a complete prepared rep", ErrUnsupported)
	}
	if len(res.Source) != len(res.Path) {
		return NewMaintainerPolicy(res.Graph, opts, policy)
	}
	m, err := newShell(res.Graph, opts, policy)
	if err != nil {
		return nil, err
	}
	// The coverage target must match what the producing walker used.
	w, err := traverse.NewWalker(res.Graph, opts)
	if err != nil {
		return nil, err
	}
	m.commit(res.Graph, rep, res, w.Target())
	return m, nil
}

// newShell validates inputs and builds the edge set and WL tracker; the
// caller supplies the representation via commit.
func newShell(g *graph.Graph, opts traverse.Options, policy Policy) (*Maintainer, error) {
	if g.Directed() {
		return nil, fmt.Errorf("%w: directed graph", ErrUnsupported)
	}
	if opts.DropEdges != 0 {
		return nil, fmt.Errorf("%w: edge dropping", ErrUnsupported)
	}
	if opts.SparsifyFraction != 0 && opts.SparsifyFraction != 1 {
		// Incremental repair replays against the full topology; a
		// sparsified rep would need the sampler re-run per mutation, which
		// the splice machinery does not model.
		return nil, fmt.Errorf("%w: sparsification", ErrUnsupported)
	}
	m := &Maintainer{
		opts:     opts,
		policy:   policy.resolved(),
		numNodes: g.NumNodes(),
		edgeSet:  make(map[[2]graph.NodeID]int32, g.NumEdges()),
	}
	for i, e := range g.Edges() {
		if e.Src == e.Dst {
			return nil, fmt.Errorf("%w: self loop at edge %d", ErrUnsupported, i)
		}
		key := canon(e.Src, e.Dst)
		if _, dup := m.edgeSet[key]; dup {
			return nil, fmt.Errorf("%w: duplicate edge (%d,%d)", ErrUnsupported, e.Src, e.Dst)
		}
		m.edgeSet[key] = int32(i)
	}
	if m.policy.WLRounds > 0 {
		m.tracker = wl.NewTracker(wlAdj{g}, nil, m.policy.WLRounds)
	}
	return m, nil
}

// wlAdj adapts graph.Graph to wl.Adjacency.
type wlAdj struct{ g *graph.Graph }

func (a wlAdj) NumNodes() int             { return a.g.NumNodes() }
func (a wlAdj) Neighbors(v int32) []int32 { return a.g.Neighbors(v) }

func (m *Maintainer) commit(g *graph.Graph, rep *band.Rep, res *traverse.Result, target int) {
	m.g = g
	m.rep = rep
	m.res = res
	m.target = target
}

// Rep returns the current representation. It is immutable: subsequent
// updates replace it rather than modify it.
func (m *Maintainer) Rep() *band.Rep { return m.rep }

// Result returns the traversal behind Rep (immutable, like Rep).
func (m *Maintainer) Result() *traverse.Result { return m.res }

// Graph returns the live graph (immutable, like Rep).
func (m *Maintainer) Graph() *graph.Graph { return m.g }

// Fingerprint returns the live graph's canonical topology hash — the cache
// key under which the current representation may be published.
func (m *Maintainer) Fingerprint() graph.Fingerprint { return m.g.Fingerprint() }

// NumNodes returns the (fixed) vertex count.
func (m *Maintainer) NumNodes() int { return m.numNodes }

// NumEdges returns the live edge count.
func (m *Maintainer) NumEdges() int { return m.g.NumEdges() }

// Splices returns how many updates were absorbed by prefix-replay splices.
func (m *Maintainer) Splices() int { return m.splices }

// Rebuilds returns how many updates fell back to a full re-traversal.
func (m *Maintainer) Rebuilds() int { return m.rebuilds }

func canon(u, v graph.NodeID) [2]graph.NodeID {
	if u > v {
		u, v = v, u
	}
	return [2]graph.NodeID{u, v}
}

// AddEdge inserts edge {u, v} and repairs the representation. The new edge
// is appended to the COO list as (min, max), keeping existing edge IDs
// stable.
func (m *Maintainer) AddEdge(u, v graph.NodeID) (Repair, error) {
	if err := m.validateAdd(u, v, nil, nil); err != nil {
		return Repair{}, err
	}
	return m.applyAdd(u, v)
}

// RemoveEdge deletes edge {u, v}. The COO list is compacted preserving
// order: IDs above the removed edge shift down by one.
func (m *Maintainer) RemoveEdge(u, v graph.NodeID) (Repair, error) {
	if err := m.validateRemove(u, v, nil, nil); err != nil {
		return Repair{}, err
	}
	return m.applyRemove(u, v)
}

// ApplyBatch applies all removals, then all insertions, as one atomic
// group: every operation is validated against the would-be state before
// any is applied, so a rejected batch leaves the maintainer untouched.
//
// The whole batch is repaired as ONE fused splice or rebuild, not one per
// mutation: only the final representation is constrained by the canonical
// invariant, and the prefix-replay argument generalises — the traversal of
// the post-batch graph follows the old path until the first appearance of
// any mutated endpoint, so one replay at the minimum first-occurrence
// absorbs every mutation at once. A k-mutation batch therefore costs about
// one repair instead of k. The returned slice holds one Repair per repair
// performed (a single element for a fused batch), not one per mutation.
func (m *Maintainer) ApplyBatch(removes, adds [][2]graph.NodeID) ([]Repair, error) {
	if err := m.ValidateBatch(removes, adds); err != nil {
		return nil, err
	}
	switch len(removes) + len(adds) {
	case 0:
		return nil, nil
	case 1:
		var r Repair
		var err error
		if len(removes) == 1 {
			r, err = m.applyRemove(removes[0][0], removes[0][1])
		} else {
			r, err = m.applyAdd(adds[0][0], adds[0][1])
		}
		if err != nil {
			return nil, err
		}
		return []Repair{r}, nil
	}
	r, err := m.applyBatchFused(removes, adds)
	if err != nil {
		return nil, err
	}
	return []Repair{r}, nil
}

// applyBatchFused builds the post-batch graph and composed edge-ID remap in
// one pass and repairs once. Removals compact the COO list preserving
// order, then insertions append as (min, max) — the same canonical
// successor order sequential application produces, so the resulting
// fingerprint is independent of how a batch is split.
func (m *Maintainer) applyBatchFused(removes, adds [][2]graph.NodeID) (Repair, error) {
	old := m.g.Edges()
	victim := make([]bool, len(old))
	for _, e := range removes {
		victim[m.edgeSet[canon(e[0], e[1])]] = true
	}
	edges := make([]graph.Edge, 0, len(old)-len(removes)+len(adds))
	var remap []int32
	if len(removes) > 0 {
		remap = make([]int32, len(old))
	}
	for i, e := range old {
		if victim[i] {
			remap[i] = -1
			continue
		}
		if remap != nil {
			remap[i] = int32(len(edges))
		}
		edges = append(edges, e)
	}
	endpoints := make([]graph.NodeID, 0, 2*(len(removes)+len(adds)))
	for _, e := range removes {
		endpoints = append(endpoints, e[0], e[1])
	}
	for _, e := range adds {
		k := canon(e[0], e[1])
		edges = append(edges, graph.Edge{Src: k[0], Dst: k[1]})
		endpoints = append(endpoints, e[0], e[1])
	}
	gNew, err := graph.New(m.numNodes, edges, false)
	if err != nil {
		m.broken = true
		return Repair{}, err
	}
	r, err := m.repairMulti(gNew, endpoints, remap)
	if err != nil {
		return Repair{}, err
	}
	m.edgeSet = make(map[[2]graph.NodeID]int32, len(edges))
	for i, e := range edges {
		m.edgeSet[canon(e.Src, e.Dst)] = int32(i)
	}
	return r, nil
}

// ValidateBatch checks a batch without applying it. Removals precede
// insertions, so removing an edge inserted by the same batch is invalid,
// while re-inserting an edge the batch removes is fine.
func (m *Maintainer) ValidateBatch(removes, adds [][2]graph.NodeID) error {
	if m.broken {
		return ErrBroken
	}
	removed := make(map[[2]graph.NodeID]bool, len(removes))
	for _, e := range removes {
		if err := m.validateRemove(e[0], e[1], removed, nil); err != nil {
			return err
		}
		removed[canon(e[0], e[1])] = true
	}
	added := make(map[[2]graph.NodeID]bool, len(adds))
	for _, e := range adds {
		if err := m.validateAdd(e[0], e[1], removed, added); err != nil {
			return err
		}
		added[canon(e[0], e[1])] = true
	}
	return nil
}

func (m *Maintainer) validateAdd(u, v graph.NodeID, removed, added map[[2]graph.NodeID]bool) error {
	if err := m.checkVertices(u, v); err != nil {
		return err
	}
	key := canon(u, v)
	if _, live := m.edgeSet[key]; live && !removed[key] {
		return fmt.Errorf("%w: (%d,%d)", ErrEdgeExists, u, v)
	}
	if added[key] {
		return fmt.Errorf("%w: (%d,%d) twice in batch", ErrEdgeExists, u, v)
	}
	return nil
}

func (m *Maintainer) validateRemove(u, v graph.NodeID, removed, _ map[[2]graph.NodeID]bool) error {
	if err := m.checkVertices(u, v); err != nil {
		return err
	}
	key := canon(u, v)
	if _, live := m.edgeSet[key]; !live || removed[key] {
		return fmt.Errorf("%w: (%d,%d)", ErrEdgeMissing, u, v)
	}
	return nil
}

func (m *Maintainer) checkVertices(u, v graph.NodeID) error {
	if m.broken {
		return ErrBroken
	}
	if u < 0 || int(u) >= m.numNodes || v < 0 || int(v) >= m.numNodes {
		return fmt.Errorf("%w: (%d,%d) with n=%d", ErrVertexRange, u, v, m.numNodes)
	}
	if u == v {
		return ErrSelfLoop
	}
	return nil
}

func (m *Maintainer) applyAdd(u, v graph.NodeID) (Repair, error) {
	key := canon(u, v)
	edges := append(m.g.Edges(), graph.Edge{Src: key[0], Dst: key[1]})
	gNew, err := graph.New(m.numNodes, edges, false)
	if err != nil {
		m.broken = true
		return Repair{}, err
	}
	r, err := m.repair(gNew, u, v, nil)
	if err != nil {
		return Repair{}, err
	}
	m.edgeSet[key] = int32(len(edges) - 1)
	return r, nil
}

func (m *Maintainer) applyRemove(u, v graph.NodeID) (Repair, error) {
	key := canon(u, v)
	eid := m.edgeSet[key]
	old := m.g.Edges()
	edges := append(old[:eid], old[eid+1:]...)
	gNew, err := graph.New(m.numNodes, edges, false)
	if err != nil {
		m.broken = true
		return Repair{}, err
	}
	remap := make([]int32, len(old))
	for i := range remap {
		switch {
		case int32(i) < eid:
			remap[i] = int32(i)
		case int32(i) == eid:
			remap[i] = -1
		default:
			remap[i] = int32(i) - 1
		}
	}
	r, err := m.repair(gNew, u, v, remap)
	if err != nil {
		return Repair{}, err
	}
	delete(m.edgeSet, key)
	for k, id := range m.edgeSet {
		if id > eid {
			m.edgeSet[k] = id - 1
		}
	}
	return r, nil
}

// repair brings the representation in sync with gNew after the mutation of
// edge {u, v}, splicing when the prefix-replay preconditions hold and
// rebuilding otherwise. remap translates old COO edge IDs to gNew's (nil
// for insertions).
func (m *Maintainer) repair(gNew *graph.Graph, u, v graph.NodeID, remap []int32) (Repair, error) {
	return m.repairMulti(gNew, []graph.NodeID{u, v}, remap)
}

// repairMulti is repair over a whole mutation batch already materialised as
// gNew: endpoints lists every vertex incident to a mutated edge, and remap
// composes all the batch's removals. The shared prefix ends at the minimum
// first occurrence across all endpoints — before any of them is visited or
// enters the trailing window, no candidate pool, score, stack, or
// termination test can observe any of the batch's mutations.
func (m *Maintainer) repairMulti(gNew *graph.Graph, endpoints []graph.NodeID, remap []int32) (Repair, error) {
	wlChanged := -1
	if m.tracker != nil {
		ends := make([]int32, len(endpoints))
		for i, e := range endpoints {
			ends[i] = int32(e)
		}
		wlChanged = m.tracker.UpdateBatch(wlAdj{gNew}, ends)
		if frac := m.policy.RebuildFraction; frac > 0 && frac < 1 &&
			float64(wlChanged) > frac*float64(m.numNodes) {
			return m.rebuildFrom(gNew, nil, wlChanged, "wl-delta")
		}
	}

	w, err := traverse.NewWalker(gNew, m.opts)
	if err != nil {
		m.broken = true
		return Repair{}, err
	}
	// Layout guards: the adaptive window and default start are functions
	// of the whole graph; if the mutation moved either, the old path's
	// geometry no longer applies and no prefix is shareable.
	if w.Window() != m.rep.Window {
		return m.rebuildFrom(gNew, w, wlChanged, "window-changed")
	}
	if len(m.res.Path) == 0 || w.Start() != m.res.Path[0] {
		return m.rebuildFrom(gNew, w, wlChanged, "start-changed")
	}

	// The traversal of gNew provably follows the old path up to the first
	// appearance of a mutated endpoint: before any endpoint is visited or
	// enters the trailing window, no candidate set, score, stack, or
	// termination test differs between the two graphs.
	p := len(m.res.Path)
	for _, end := range endpoints {
		if pos := m.rep.Positions[end]; len(pos) == 0 {
			p = 0
		} else if int(pos[0]) < p {
			p = int(pos[0])
		}
	}
	if float64(p) < m.policy.MinPrefixFraction*float64(len(m.res.Path)) {
		return m.rebuildFrom(gNew, w, wlChanged, "short-prefix")
	}

	// Replay the shared prefix. The one divergence the targets can cause:
	// once coverage crosses the smaller of the two targets, the edgesDone
	// flag could differ between the runs, so later decisions are no
	// longer guaranteed identical — stop there and let the decision loop
	// re-decide the rest (conservative, and vanishingly rare under full
	// coverage: it needs every old edge covered before either endpoint's
	// first visit).
	oldTarget, newTarget := m.target, w.Target()
	minTarget := oldTarget
	if newTarget < minTarget {
		minTarget = newTarget
	}
	replayed := 0
	for i := 0; i < p; i++ {
		if oldTarget != newTarget && w.Covered() >= minTarget {
			break
		}
		if err := w.Replay(m.res.Path[i], m.res.Source[i]); err != nil {
			return m.rebuildFrom(gNew, nil, wlChanged, "replay-diverged")
		}
		replayed++
	}
	res := w.Complete()
	rep, err := band.Splice(m.rep, res, gNew, replayed, remap)
	if err != nil {
		return m.rebuildFrom(gNew, nil, wlChanged, "splice-failed")
	}
	m.commit(gNew, rep, res, newTarget)
	m.splices++
	return Repair{
		Kind:       RepairSplice,
		PrefixRows: replayed,
		PathRows:   len(res.Path),
		WLChanged:  wlChanged,
	}, nil
}

// rebuildFrom re-traverses gNew from scratch. w, when non-nil, is a fresh
// walker on gNew that has taken no steps yet.
func (m *Maintainer) rebuildFrom(gNew *graph.Graph, w *traverse.Walker, wlChanged int, reason string) (Repair, error) {
	if w == nil {
		var err error
		w, err = traverse.NewWalker(gNew, m.opts)
		if err != nil {
			m.broken = true
			return Repair{}, err
		}
	}
	res := w.Complete()
	rep, err := band.Build(res.Graph, res, 0)
	if err != nil {
		m.broken = true
		return Repair{}, err
	}
	m.commit(res.Graph, rep, res, w.Target())
	m.rebuilds++
	return Repair{
		Kind:      RepairRebuild,
		PathRows:  len(res.Path),
		WLChanged: wlChanged,
		Reason:    reason,
	}, nil
}

// Rebuild forces a full re-traversal of the live graph.
func (m *Maintainer) Rebuild() error {
	if m.broken {
		return ErrBroken
	}
	_, err := m.rebuildFrom(m.g, nil, -1, "forced")
	return err
}
