// Package dynamic maintains a MEGA path representation under streaming
// edge insertions and deletions — the latency-constrained scenario of the
// paper's discussion (§IV-B8: "MEGA can be applied with DYGAT, facilitates
// real-time stroke classification"). A full re-traversal costs O(m·ω);
// online updates must be cheap, so the Maintainer repairs incrementally:
//
//   - an inserted edge whose endpoints already sit within ω path positions
//     of each other is an *in-band* repair: flip one mask bit;
//   - otherwise a two-position *patch* [u, v] is appended to the path, a
//     consecutive (offset-1) pair that captures the new edge at the cost of
//     two duplicate appearances;
//   - deletions clear every band entry of the edge;
//   - once patches have grown the path beyond a configurable expansion
//     budget, the Maintainer performs a full rebuild to restore a tight
//     layout.
package dynamic

import (
	"errors"
	"fmt"

	"mega/internal/band"
	"mega/internal/graph"
	"mega/internal/traverse"
)

// RepairKind classifies how an update was absorbed.
type RepairKind int

// Repair kinds.
const (
	// RepairInBand flipped an existing band slot.
	RepairInBand RepairKind = iota + 1
	// RepairPatch appended a patch segment to the path.
	RepairPatch
	// RepairRebuild re-traversed the whole graph.
	RepairRebuild
	// RepairClear removed band entries (deletions).
	RepairClear
)

// String implements fmt.Stringer.
func (k RepairKind) String() string {
	switch k {
	case RepairInBand:
		return "in-band"
	case RepairPatch:
		return "patch"
	case RepairRebuild:
		return "rebuild"
	case RepairClear:
		return "clear"
	default:
		return fmt.Sprintf("RepairKind(%d)", int(k))
	}
}

// Repair describes how one update was applied.
type Repair struct {
	Kind RepairKind
	// TouchedSlots counts band entries written.
	TouchedSlots int
}

// Errors returned by the Maintainer.
var (
	ErrVertexRange = errors.New("dynamic: vertex out of range")
	ErrSelfLoop    = errors.New("dynamic: self loops not supported")
	ErrEdgeExists  = errors.New("dynamic: edge already present")
	ErrEdgeMissing = errors.New("dynamic: edge not present")
)

// Maintainer keeps a graph and its path representation in sync under
// updates.
type Maintainer struct {
	opts traverse.Options
	// ExpansionBudget is the allowed growth factor of the path relative
	// to its length right after the last full rebuild; exceeding it
	// triggers the next rebuild (default 1.25). A relative budget avoids
	// rebuild storms on graphs whose natural expansion is already high
	// (power-law graphs traverse to ~3x even when fresh).
	ExpansionBudget float64

	numNodes  int
	edges     []graph.Edge
	edgeSet   map[[2]graph.NodeID]int32 // canonical pair -> COO id, -1 = deleted
	liveEdges int

	rep      *band.Rep
	baseLen  int // path length right after the last rebuild
	rebuilds int
	patches  int
}

// NewMaintainer traverses g once and starts maintaining it.
func NewMaintainer(g *graph.Graph, opts traverse.Options) (*Maintainer, error) {
	m := &Maintainer{
		opts:            opts,
		ExpansionBudget: 1.25,
		numNodes:        g.NumNodes(),
		edges:           g.Edges(),
	}
	m.edgeSet = make(map[[2]graph.NodeID]int32, len(m.edges))
	for i, e := range m.edges {
		m.edgeSet[canon(e.Src, e.Dst)] = int32(i)
	}
	m.liveEdges = len(m.edges)
	if err := m.rebuild(); err != nil {
		return nil, err
	}
	m.rebuilds = 0 // the initial build is not a repair
	return m, nil
}

// Rep returns the current representation. The returned value is live: it
// changes with subsequent updates.
func (m *Maintainer) Rep() *band.Rep { return m.rep }

// NumEdges returns the live edge count.
func (m *Maintainer) NumEdges() int { return m.liveEdges }

// Rebuilds returns how many full re-traversals updates have triggered.
func (m *Maintainer) Rebuilds() int { return m.rebuilds }

// Patches returns how many patch segments are currently appended.
func (m *Maintainer) Patches() int { return m.patches }

func canon(u, v graph.NodeID) [2]graph.NodeID {
	if u > v {
		u, v = v, u
	}
	return [2]graph.NodeID{u, v}
}

// AddEdge inserts edge {u, v} and repairs the representation.
func (m *Maintainer) AddEdge(u, v graph.NodeID) (Repair, error) {
	if err := m.checkVertices(u, v); err != nil {
		return Repair{}, err
	}
	key := canon(u, v)
	if id, ok := m.edgeSet[key]; ok && id >= 0 {
		return Repair{}, fmt.Errorf("%w: (%d,%d)", ErrEdgeExists, u, v)
	}
	eid := int32(len(m.edges))
	m.edges = append(m.edges, graph.Edge{Src: key[0], Dst: key[1]})
	m.edgeSet[key] = eid
	m.liveEdges++
	m.rep.TotalEdges = len(m.edges)

	// In-band: any appearance pair within ω positions?
	if slot, ok := m.findBandSlot(u, v); ok {
		m.rep.Mask[slot.offset-1][slot.pos] = true
		m.rep.EdgeID[slot.offset-1][slot.pos] = eid
		m.rep.CoveredEdges++
		return Repair{Kind: RepairInBand, TouchedSlots: 1}, nil
	}

	// Patch: append [u, v] to the path; the offset-1 slot between them
	// carries the new edge.
	m.appendPatch(u, v, eid)
	m.patches++
	m.rep.CoveredEdges++

	// Expansion budget check, relative to the post-rebuild baseline.
	if float64(m.rep.Len()) > m.ExpansionBudget*float64(m.baseLen) {
		if err := m.rebuild(); err != nil {
			return Repair{}, err
		}
		return Repair{Kind: RepairRebuild, TouchedSlots: m.rep.Len()}, nil
	}
	return Repair{Kind: RepairPatch, TouchedSlots: 2}, nil
}

// RemoveEdge deletes edge {u, v}, clearing its band entries.
func (m *Maintainer) RemoveEdge(u, v graph.NodeID) (Repair, error) {
	if err := m.checkVertices(u, v); err != nil {
		return Repair{}, err
	}
	key := canon(u, v)
	eid, ok := m.edgeSet[key]
	if !ok || eid < 0 {
		return Repair{}, fmt.Errorf("%w: (%d,%d)", ErrEdgeMissing, u, v)
	}
	m.edgeSet[key] = -1
	m.liveEdges--

	touched := 0
	for o := 1; o <= m.rep.Window; o++ {
		eids := m.rep.EdgeID[o-1]
		for i, id := range eids {
			if id == eid {
				eids[i] = -1
				m.rep.Mask[o-1][i] = false
				touched++
			}
		}
	}
	if touched > 0 {
		m.rep.CoveredEdges--
	}
	return Repair{Kind: RepairClear, TouchedSlots: touched}, nil
}

// bandSlot addresses one band entry.
type bandSlot struct {
	offset int
	pos    int
}

// findBandSlot looks for an unoccupied band entry connecting appearances
// of u and v within ω positions.
func (m *Maintainer) findBandSlot(u, v graph.NodeID) (bandSlot, bool) {
	for _, pu := range m.rep.Positions[u] {
		for _, pv := range m.rep.Positions[v] {
			lo, hi := int(pu), int(pv)
			if lo > hi {
				lo, hi = hi, lo
			}
			o := hi - lo
			if o >= 1 && o <= m.rep.Window && !m.rep.Mask[o-1][lo] {
				return bandSlot{offset: o, pos: lo}, true
			}
		}
	}
	return bandSlot{}, false
}

// appendPatch extends the path with positions for u and v and grows every
// offset's band arrays accordingly.
func (m *Maintainer) appendPatch(u, v graph.NodeID, eid int32) {
	base := len(m.rep.Path)
	m.rep.Path = append(m.rep.Path, u, v)
	m.rep.Positions[u] = append(m.rep.Positions[u], int32(base))
	m.rep.Positions[v] = append(m.rep.Positions[v], int32(base+1))
	newLen := len(m.rep.Path)
	for o := 1; o <= m.rep.Window; o++ {
		want := newLen - o
		if want < 0 {
			want = 0
		}
		for len(m.rep.Mask[o-1]) < want {
			m.rep.Mask[o-1] = append(m.rep.Mask[o-1], false)
			m.rep.EdgeID[o-1] = append(m.rep.EdgeID[o-1], -1)
		}
	}
	// The consecutive pair carries the new edge.
	m.rep.Mask[0][base] = true
	m.rep.EdgeID[0][base] = eid
}

// Rebuild re-traverses the live graph from scratch, compacting patches and
// deleted edges.
func (m *Maintainer) Rebuild() error {
	if err := m.rebuild(); err != nil {
		return err
	}
	return nil
}

func (m *Maintainer) rebuild() error {
	live := make([]graph.Edge, 0, m.liveEdges)
	for _, e := range m.edges {
		if id, ok := m.edgeSet[canon(e.Src, e.Dst)]; ok && id >= 0 {
			live = append(live, e)
		}
	}
	// Compact edge IDs.
	m.edges = live
	m.edgeSet = make(map[[2]graph.NodeID]int32, len(live))
	for i, e := range live {
		m.edgeSet[canon(e.Src, e.Dst)] = int32(i)
	}
	g, err := graph.New(m.numNodes, live, false)
	if err != nil {
		return err
	}
	rep, _, err := band.FromGraph(g, m.opts)
	if err != nil {
		return err
	}
	m.rep = rep
	m.baseLen = rep.Len()
	m.patches = 0
	m.rebuilds++
	return nil
}

// Graph materialises the current live graph.
func (m *Maintainer) Graph() (*graph.Graph, error) {
	live := make([]graph.Edge, 0, m.liveEdges)
	for _, e := range m.edges {
		if id, ok := m.edgeSet[canon(e.Src, e.Dst)]; ok && id >= 0 {
			live = append(live, e)
		}
	}
	return graph.New(m.numNodes, live, false)
}

func (m *Maintainer) checkVertices(u, v graph.NodeID) error {
	if u < 0 || int(u) >= m.numNodes || v < 0 || int(v) >= m.numNodes {
		return fmt.Errorf("%w: (%d,%d) with n=%d", ErrVertexRange, u, v, m.numNodes)
	}
	if u == v {
		return ErrSelfLoop
	}
	return nil
}
