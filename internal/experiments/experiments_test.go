package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// runQuick executes one experiment at Quick scale and sanity-checks the
// report.
func runQuick(t *testing.T, id string) *Report {
	t.Helper()
	run, ok := ByID(id)
	if !ok {
		t.Fatalf("unknown experiment %q", id)
	}
	r, err := run(Quick())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if r.ID != id {
		t.Errorf("report ID %q, want %q", r.ID, id)
	}
	if len(r.Lines) == 0 {
		t.Errorf("%s produced no data lines", id)
	}
	if !strings.Contains(r.String(), r.Title) {
		t.Errorf("%s String() missing title", id)
	}
	return r
}

func TestAllExperimentsRegistered(t *testing.T) {
	want := []string{
		"fig1b", "table1", "table2", "table3", "fig4", "fig5", "fig6",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"fig15", "dist",
		"ext-reorder", "ext-hetero", "ext-dynamic", "ext-drop", "ext-imbalance",
		"ext-sparsify",
	}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("registered %d experiments, want %d", len(got), len(want))
	}
	for i, id := range want {
		if got[i].ID != id {
			t.Errorf("experiment %d = %q, want %q", i, got[i].ID, id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID should reject unknown ids")
	}
}

func TestFig1bShape(t *testing.T) {
	r := runQuick(t, "fig1b")
	// 5 sizes x 3 dims data rows + header.
	if len(r.Lines) != 16 {
		t.Errorf("fig1b lines = %d, want 16", len(r.Lines))
	}
}

func TestTable1Shape(t *testing.T) {
	r := runQuick(t, "table1")
	joined := strings.Join(r.Lines, "\n")
	for _, want := range []string{"GCN", "GT", "Scatter", "Gather"} {
		if !strings.Contains(joined, want) {
			t.Errorf("table1 missing %q", want)
		}
	}
}

func TestTable2CoversAllDatasets(t *testing.T) {
	r := runQuick(t, "table2")
	joined := strings.Join(r.Lines, "\n")
	for _, ds := range []string{"ZINC", "AQSOL", "CSL", "CYCLES"} {
		if !strings.Contains(joined, ds) {
			t.Errorf("table2 missing dataset %s", ds)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	r := runQuick(t, "table3")
	if len(r.Lines) != 5 { // header + 4 datasets
		t.Errorf("table3 lines = %d, want 5", len(r.Lines))
	}
}

func TestFig4SgemmBeatsGraphKernels(t *testing.T) {
	r := runQuick(t, "fig4")
	// The shape note records min(sgemm) vs max(graph kernels); verify the
	// underlying claim by parsing the note.
	found := false
	for _, n := range r.Notes {
		var a, b float64
		if _, err := parseTwoFloats(n, &a, &b); err == nil {
			found = true
			if a <= b {
				t.Errorf("sgemm efficiency %v should exceed graph kernels %v", a, b)
			}
		}
	}
	if !found {
		t.Error("fig4 missing measured note")
	}
}

func TestFig8PathBeatsGlobal(t *testing.T) {
	r := runQuick(t, "fig8")
	found := false
	for _, n := range r.Notes {
		if strings.HasPrefix(n, "measured:") {
			found = true
			var oneHop, posMin, globalMax float64
			if _, err := parseThreeFloats(n, &oneHop, &posMin, &globalMax); err != nil {
				t.Fatalf("cannot parse note %q: %v", n, err)
			}
			if oneHop != 1.0 {
				t.Errorf("path 1-hop similarity = %v, want 1.0 (Fig 8 claim)", oneHop)
			}
			if posMin <= globalMax {
				t.Errorf("position-level min similarity %v should exceed global max %v", posMin, globalMax)
			}
		}
	}
	if !found {
		t.Error("fig8 missing measured note")
	}
}

func TestFig9MegaBeatsDGL(t *testing.T) {
	r := runQuick(t, "fig9")
	for _, n := range r.Notes {
		if strings.HasPrefix(n, "measured:") {
			var worstMega, bestDGL float64
			if _, err := parseTwoFloats(n, &worstMega, &bestDGL); err != nil {
				t.Fatalf("cannot parse note %q: %v", n, err)
			}
			if worstMega <= bestDGL {
				t.Errorf("worst MEGA SM efficiency %v should exceed best DGL %v", worstMega, bestDGL)
			}
			return
		}
	}
	t.Error("fig9 missing measured note")
}

func TestFig10AllSpeedupsAboveOne(t *testing.T) {
	r := runQuick(t, "fig10")
	for _, line := range r.Lines[1:] {
		if !strings.Contains(line, "x") {
			continue
		}
		fields := strings.Fields(line)
		// Columns: dataset model batch dgl mega speedup dglSgemm megaSgemm.
		if len(fields) < 8 || !strings.HasSuffix(fields[5], "x") {
			continue
		}
		var sp float64
		if _, err := parseOneFloat(strings.TrimSuffix(fields[5], "x"), &sp); err != nil {
			continue
		}
		if sp <= 1 {
			t.Errorf("speedup %.2f <= 1 in row %q", sp, line)
		}
	}
}

func TestConvergenceExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence runs are slow")
	}
	for _, id := range []string{"fig11", "fig12", "fig13", "fig14", "fig15"} {
		t.Run(id, func(t *testing.T) {
			r := runQuick(t, id)
			joined := strings.Join(r.Lines, "\n")
			if !strings.Contains(joined, "dgl") || !strings.Contains(joined, "mega") {
				t.Errorf("%s missing engine rows", id)
			}
		})
	}
}

func TestDistExperiment(t *testing.T) {
	r := runQuick(t, "dist")
	if len(r.Lines) < 5 {
		t.Errorf("dist lines = %d", len(r.Lines))
	}
}

func TestScales(t *testing.T) {
	q, m, p := Quick(), Medium(), Paper()
	if q.Train >= m.Train {
		t.Error("Quick should be smaller than Medium")
	}
	if p.Train != 0 {
		t.Error("Paper should use full splits (0)")
	}
	if q.Epochs <= 0 || m.Epochs <= 0 || p.Epochs <= 0 {
		t.Error("all scales need positive epochs")
	}
}

// parseOneFloat/TwoFloats/ThreeFloats extract trailing floats from a
// formatted note line.
func parseOneFloat(s string, a *float64) (int, error) {
	return fscanFloats(s, a)
}

func parseTwoFloats(s string, a, b *float64) (int, error) {
	return fscanFloats(s, a, b)
}

func parseThreeFloats(s string, a, b, c *float64) (int, error) {
	return fscanFloats(s, a, b, c)
}

// fscanFloats pulls the first len(dst) float literals containing a decimal
// point out of s (skipping integer tokens like counts).
func fscanFloats(s string, dst ...*float64) (int, error) {
	count := 0
	for _, tok := range strings.Fields(s) {
		tok = strings.Trim(tok, "(),x%")
		if !strings.Contains(tok, ".") {
			continue
		}
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			continue
		}
		*dst[count] = v
		count++
		if count == len(dst) {
			return count, nil
		}
	}
	return count, errNotEnoughFloats
}

var errNotEnoughFloats = strErr("not enough float literals")

type strErr string

func (e strErr) Error() string { return string(e) }

func TestExtensionExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("extension experiments are slow")
	}
	for _, id := range []string{"ext-reorder", "ext-hetero", "ext-dynamic", "ext-drop", "ext-imbalance", "ext-sparsify"} {
		t.Run(id, func(t *testing.T) {
			runQuick(t, id)
		})
	}
}
