package experiments

import (
	"encoding/json"
	"os"
	"runtime"
	"strings"
	"testing"

	"mega/internal/models"
	"mega/internal/train"
)

// TestWriteBenchSparsify regenerates BENCH_sparsify.json: the
// effective-resistance sparsification matrix over the synthetic suites.
// Per dataset × keep fraction it records mean band half-width, revisits,
// path expansion, surviving edges, and simulated GTX1080 cycles of a
// profiled training step, plus the convergence shape at keep 0.5 vs the
// unsparsified baseline on ZINC. Acceptance is asserted on every run: at
// keep 0.5 the band is no wider and the simulated cycles are strictly
// lower than unsparsified on every dataset, with the band strictly
// narrower on at least one, and the whole sparsified measurement is
// bit-reproducible for a fixed seed. BENCH_SPARSIFY_FAST=1 shrinks the
// scale for the CI smoke.
func TestWriteBenchSparsify(t *testing.T) {
	out := os.Getenv("BENCH_SPARSIFY_OUT")
	if out == "" {
		t.Skip("set BENCH_SPARSIFY_OUT=<path> to run the sparsify bench (make bench-sparsify)")
	}
	fast := os.Getenv("BENCH_SPARSIFY_FAST") != ""

	s := Scale{Train: 96, Val: 24, Test: 24, Epochs: 6, Dim: 32, Batch: 24, MaxBatches: 2, Seed: 7}
	if fast {
		s = Quick()
	}

	type row struct {
		Dataset   string  `json:"dataset"`
		Keep      float64 `json:"keep_fraction"`
		Window    float64 `json:"mean_window"`
		Revisits  float64 `json:"mean_revisits"`
		Expansion float64 `json:"mean_expansion"`
		KeptEdges float64 `json:"mean_kept_edges"`
		Cycles    float64 `json:"sim_cycles"`
	}
	var rows []row

	for _, dsName := range []string{"ZINC", "AQSOL", "CSL"} {
		ds, err := loadDataset(dsName, s)
		if err != nil {
			t.Fatal(err)
		}
		model := buildModel("GCN", ds, s.Dim, s.Seed)
		var base, half sparsifyStats
		for _, frac := range sparsifyKeepFractions {
			st, err := measureSparsify(ds, model, frac, s)
			if err != nil {
				t.Fatal(err)
			}
			rows = append(rows, row{
				Dataset: dsName, Keep: frac,
				Window: st.MeanWindow, Revisits: st.MeanRevisits,
				Expansion: st.MeanExpansion, KeptEdges: st.MeanKeptEdges,
				Cycles: st.Cycles,
			})
			t.Logf("%-6s keep %.2f  window %6.2f  revisits %8.2f  expansion %6.2f  edges %7.1f  cycles %12.0f",
				dsName, frac, st.MeanWindow, st.MeanRevisits, st.MeanExpansion, st.MeanKeptEdges, st.Cycles)
			switch frac {
			case 1.0:
				base = st
			case 0.5:
				half = st
			}
		}
		// Acceptance: sparsified preprocessing must buy a narrower (or at
		// worst equal) band and strictly fewer simulated cycles.
		if half.MeanWindow > base.MeanWindow {
			t.Errorf("%s: keep 0.5 widened the band (%.2f > %.2f)", dsName, half.MeanWindow, base.MeanWindow)
		}
		if half.Cycles >= base.Cycles {
			t.Errorf("%s: keep 0.5 did not reduce sim cycles (%.0f vs %.0f)", dsName, half.Cycles, base.Cycles)
		}
	}
	narrower := 0
	for _, r := range rows {
		if r.Keep != 0.5 {
			continue
		}
		for _, b := range rows {
			if b.Dataset == r.Dataset && b.Keep == 1.0 && r.Window < b.Window {
				narrower++
			}
		}
	}
	if narrower == 0 {
		t.Error("acceptance: keep 0.5 narrowed the band on no dataset")
	}

	// Bit-reproducibility of the whole sparsified measurement: identical
	// seed, identical dataset, identical aggregates to the last bit.
	{
		ds, err := loadDataset("ZINC", s)
		if err != nil {
			t.Fatal(err)
		}
		model := buildModel("GCN", ds, s.Dim, s.Seed)
		a, err := measureSparsify(ds, model, 0.5, s)
		if err != nil {
			t.Fatal(err)
		}
		b, err := measureSparsify(ds, model, 0.5, s)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("sparsified measurement not bit-reproducible: %+v vs %+v", a, b)
		}
	}

	// Convergence shape on ZINC: per-epoch val metric at keep 1.0 and 0.5.
	ds, err := loadDataset("ZINC", s)
	if err != nil {
		t.Fatal(err)
	}
	conv := map[string]any{}
	for _, frac := range []float64{1.0, 0.5} {
		res, err := train.Run(ds, train.Options{
			Model: "GCN", Engine: models.EngineMega,
			Dim: s.Dim, Layers: 4, BatchSize: s.Batch, LR: 1e-3,
			Epochs: s.Epochs, Seed: s.Seed, Profile: true,
			Mega: sparsifyMegaOptions(frac, s.Seed),
		})
		if err != nil {
			t.Fatal(err)
		}
		vals := make([]float64, len(res.Stats))
		for i, ep := range res.Stats {
			vals[i] = ep.ValMetric
		}
		last := res.Stats[len(res.Stats)-1]
		key := "keep_1.0"
		if frac != 1.0 {
			key = "keep_0.5"
		}
		conv[key] = map[string]any{
			"val_metric_per_epoch": vals,
			"final_val_metric":     last.ValMetric,
			"sim_time_ms":          last.SimTime.Seconds() * 1e3,
		}
		t.Logf("ZINC %s: final val %.4f, sim %.3fms", key, last.ValMetric, last.SimTime.Seconds()*1e3)
	}

	doc := map[string]any{
		"schema_version": 1,
		"description": "Effective-resistance sparsification matrix over the synthetic ZINC/AQSOL/CSL " +
			"suites. Edges are scored by an approximate effective-resistance sketch (signed random " +
			"probes through fixed-iteration CG solves of the regularized Laplacian), then kept by " +
			"seeded importance sampling at the given keep fraction with 1/p reweighting. Per " +
			"dataset × fraction: mean band half-width of the maintained path representation, mean " +
			"revisit count, path expansion, surviving edges, and simulated GTX1080 cycles of a " +
			"profiled MEGA training step. Convergence rows train the same GCN at keep 1.0 and 0.5. " +
			"Every run asserts the acceptance bar (keep 0.5: band no wider everywhere, strictly " +
			"narrower somewhere, strictly fewer sim cycles everywhere) and bit-reproducibility of " +
			"the sparsified measurement under a fixed seed. Regenerate with `make bench-sparsify`.",
		"machine": map[string]any{
			"goos":       runtime.GOOS,
			"goarch":     runtime.GOARCH,
			"cpu":        sparsCPUModel(),
			"num_cpu":    runtime.NumCPU(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"go_version": runtime.Version(),
		},
		"scale": map[string]any{
			"train": s.Train, "val": s.Val, "test": s.Test, "epochs": s.Epochs,
			"dim": s.Dim, "batch": s.Batch, "seed": s.Seed,
		},
		"results":     rows,
		"convergence": conv,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

func sparsCPUModel() string {
	buf, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(buf), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}
