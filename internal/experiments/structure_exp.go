package experiments

import (
	"math/rand"

	"mega/internal/band"
	"mega/internal/datasets"
	"mega/internal/dist"
	"mega/internal/graph"
	"mega/internal/traverse"
	"mega/internal/wl"
)

// Table2 reproduces Table II: dataset overview statistics.
func Table2(s Scale) (*Report, error) {
	r := &Report{ID: "table2", Title: "graph statistics"}
	r.Add("%-8s %7s %7s %7s %8s %8s %10s", "dataset", "train", "val", "test", "nodes", "edges", "sparsity")
	paper := map[string][3]float64{
		"ZINC": {23, 50, 0.096}, "AQSOL": {18, 36, 0.148},
		"CSL": {41, 164, 0.098}, "CYCLES": {49, 88, 0.036},
	}
	for _, name := range datasets.Names() {
		ds, err := loadDataset(name, s)
		if err != nil {
			return nil, err
		}
		row := datasets.ComputeTableII(ds)
		r.Add("%-8s %7d %7d %7d %8.1f %8.1f %10.3f",
			row.Name, row.Train, row.Val, row.Test, row.MeanNodes, row.MeanEdges, row.Sparsity)
		if p, ok := paper[name]; ok {
			r.Note("%s paper: nodes %.0f edges %.0f sparsity %.3f", name, p[0], p[1], p[2])
		}
	}
	return r, nil
}

// Table3 reproduces Table III: degree-distribution consistency statistics.
func Table3(s Scale) (*Report, error) {
	r := &Report{ID: "table3", Title: "degree distribution statistics"}
	r.Add("%-8s %10s %10s %10s %12s %8s", "dataset", "μ(σ(d))", "σ(dmin)", "σ(dmax)", "σ(dmean)", "μ(ε)")
	for _, name := range datasets.Names() {
		ds, err := loadDataset(name, s)
		if err != nil {
			return nil, err
		}
		row := datasets.ComputeTableIII(ds, 200, 60, s.Seed)
		r.Add("%-8s %10.4f %10.4f %10.4f %12.4f %8.2f",
			row.Name, row.MeanDegStd, row.StdDegMin, row.StdDegMax, row.StdDegMean, row.MeanKS)
	}
	r.Note("paper: small degree variance everywhere; CSL exactly 0 with ε=1; μ(ε) near 1")
	return r, nil
}

// Fig8 reproduces Figure 8: WL similarity of the path representation and of
// global attention against the original graph, across sparsity levels,
// sizes, and aggregation hops. Three curves per configuration:
//
//   - "path":     the node-level graph the masked band aggregates over
//     (with θ=1 this contains exactly the original edges, so 1-hop
//     aggregation is identical — the paper's headline claim);
//   - "path-pos": the position-level band before duplicate
//     synchronisation; node revisits split neighbourhoods, so multi-hop
//     similarity fluctuates — the paper's hop-count caveat;
//   - "global":   the fully connected graph of global attention.
func Fig8(s Scale) (*Report, error) {
	r := &Report{ID: "fig8", Title: "isomorphism (WL similarity): path rep vs global attention"}
	rng := rand.New(rand.NewSource(s.Seed))
	r.Add("%10s %6s %10s %6s %10s", "sparsity", "nodes", "kind", "hops", "similar")
	type agg struct{ path1Hop, pos1Hop, globalMax float64 }
	shape := agg{path1Hop: 1, pos1Hop: 1, globalMax: 0}
	for _, sparsity := range []float64{0.05, 0.1} {
		for _, n := range []int{32, 64, 128} {
			m := int(sparsity * float64(n*(n-1)) / 2)
			if m < n {
				m = n
			}
			g := graph.ErdosRenyiM(rng, n, m)
			rep, res, err := band.FromGraph(g, traverse.DefaultOptions())
			if err != nil {
				return nil, err
			}
			induced, err := rep.InducedGraph(res, false)
			if err != nil {
				return nil, err
			}
			global := graph.Complete(n)
			for hops := 1; hops <= 4; hops++ {
				pSim := wl.GraphSimilarity(g, induced, nil, nil, hops)
				posSim, err := positionSimilarity(g, rep, hops)
				if err != nil {
					return nil, err
				}
				gSim := wl.GraphSimilarity(g, global, nil, nil, hops)
				r.Add("%10.2f %6d %10s %6d %10.3f", sparsity, n, "path", hops, pSim)
				r.Add("%10.2f %6d %10s %6d %10.3f", sparsity, n, "path-pos", hops, posSim)
				r.Add("%10.2f %6d %10s %6d %10.3f", sparsity, n, "global", hops, gSim)
				if hops == 1 && pSim < shape.path1Hop {
					shape.path1Hop = pSim
				}
				if hops == 1 && posSim < shape.pos1Hop {
					shape.pos1Hop = posSim
				}
				if gSim > shape.globalMax {
					shape.globalMax = gSim
				}
			}
		}
	}
	r.Note("paper: path rep keeps 1-hop identity; similarity may dip with more hops; global attention scores lower")
	r.Note("measured: path 1-hop min %.3f, position-level 1-hop min %.3f, global max %.3f",
		shape.path1Hop, shape.pos1Hop, shape.globalMax)
	return r, nil
}

// positionSimilarity refines WL labels over the position-level band graph
// (uniform initial labels, the standard WL test), projects each node's
// label through its first appearance, and compares against the original
// graph's labels. Duplicate appearances split neighbourhoods, so this
// measures the structural cost of revisits before synchronisation.
func positionSimilarity(g *graph.Graph, rep *band.Rep, hops int) (float64, error) {
	posGraph, err := rep.PositionGraph()
	if err != nil {
		return 0, err
	}
	ref := wl.NewRefiner()
	origLabels := ref.RefineK(g, nil, hops)
	posLabels := ref.RefineK(posGraph, nil, hops)
	first := rep.FirstAppearance()
	projected := make(wl.Labeling, 0, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		if first[v] >= 0 {
			projected = append(projected, posLabels[first[v]])
		}
	}
	return wl.Similarity(origLabels, projected), nil
}

// distReport implements the Dist experiment: communication volumes for the
// edge-cut baseline vs path partitioning, plus a live halo-exchange run.
func distReport(s Scale) (*Report, error) {
	r := &Report{ID: "dist", Title: "distributed communication: edge cut vs path partition"}
	rng := rand.New(rand.NewSource(s.Seed))
	// Workload: a scrambled batch of small molecule-like graphs.
	members := make([]*graph.Graph, 32)
	for i := range members {
		members[i] = graph.RandomTree(rng, 20)
	}
	b, err := graph.NewBatch(members)
	if err != nil {
		return nil, err
	}
	perm := graph.RandomPermutation(rng, b.Merged.NumNodes())
	g, err := graph.PermuteNodes(b.Merged, perm)
	if err != nil {
		return nil, err
	}
	rep, tres, err := band.FromGraph(g, traverse.DefaultOptions())
	if err != nil {
		return nil, err
	}
	const dim = 64
	r.Add("%4s %14s %14s %12s %12s %10s %10s", "k", "edge msgs", "path msgs", "edge KB", "path KB", "edgeFan", "pathFan")
	for _, k := range []int{2, 4, 8, 16} {
		edge, err := dist.AnalyzeEdgePartition(g, k, dim)
		if err != nil {
			return nil, err
		}
		path, err := dist.AnalyzePathPartition(rep, k, dim)
		if err != nil {
			return nil, err
		}
		r.Add("%4d %14d %14d %12.1f %12.1f %10d %10d",
			k, edge.Messages, path.Messages,
			float64(edge.Bytes)/1024, float64(path.Bytes)/1024,
			edge.MaxFanout, path.MaxFanout)
	}
	// Live sharded-engine verification at k=4.
	res, err := dist.RunHaloExchange(g, rep, tres, 4, dim, 3)
	if err != nil {
		return nil, err
	}
	r.Add("sharded run (k=4, 3 layers): %d messages, %.1f KB", res.Messages, float64(res.Bytes)/1024)
	r.Note("paper: path partition needs O(k) messages (2 per adjacent boundary) vs all-to-all for edge cuts")
	return r, nil
}
