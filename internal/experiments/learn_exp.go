package experiments

import (
	"strings"
	"time"

	"mega/internal/models"
	"mega/internal/train"
	"mega/internal/traverse"
	"mega/internal/viz"
)

// convergence runs one dataset under both engines and reports loss (or
// accuracy) against the simulated GPU clock, plus the speedup at matched
// model quality — the Figures 11–14 protocol.
func convergence(id, title, dsName, model string, s Scale, megaOpts models.MegaOptions) (*Report, error) {
	r := &Report{ID: id, Title: title}
	ds, err := loadDataset(dsName, s)
	if err != nil {
		return nil, err
	}
	mkOpts := func(engine models.EngineKind) train.Options {
		return train.Options{
			Model: model, Engine: engine,
			Dim: s.Dim, Layers: 4, Heads: 4,
			BatchSize: s.Batch, LR: 1e-3, Epochs: s.Epochs, Seed: s.Seed,
			Profile: true, Mega: megaOpts,
		}
	}
	dglRes, err := train.Run(ds, mkOpts(models.EngineDGL))
	if err != nil {
		return nil, err
	}
	megaRes, err := train.Run(ds, mkOpts(models.EngineMega))
	if err != nil {
		return nil, err
	}

	r.Add("%-6s %6s %14s %12s %12s %12s", "engine", "epoch", "simTime(ms)", "trainLoss", "valLoss", "valMetric")
	emit := func(name string, res *train.Result) viz.Series {
		s := viz.Series{Name: name}
		for _, st := range res.Stats {
			r.Add("%-6s %6d %14.3f %12.4f %12.4f %12.4f",
				name, st.Epoch, st.SimTime.Seconds()*1e3, st.TrainLoss, st.ValLoss, st.ValMetric)
			s.X = append(s.X, st.SimTime.Seconds()*1e3)
			s.Y = append(s.Y, st.ValLoss)
		}
		return s
	}
	dglSeries := emit("dgl", dglRes)
	megaSeries := emit("mega", megaRes)
	chart := viz.LineChart("val loss vs simulated time (ms)", 64, 12, dglSeries, megaSeries)
	for _, line := range strings.Split(strings.TrimRight(chart, "\n"), "\n") {
		r.Add("%s", line)
	}

	// Speedup at matched quality (standard time-to-quality protocol):
	// the target loss is the worse of the two runs' best validation
	// losses — a quality level both runs provably reach — and the
	// speedup is the ratio of the simulated times to first reach it.
	bestDGL := bestValLoss(dglRes)
	bestMega := bestValLoss(megaRes)
	target := bestDGL
	if bestMega > target {
		target = bestMega
	}
	dglT, okD := dglRes.TimeToLoss(target)
	megaT, okM := megaRes.TimeToLoss(target)
	if okD && okM && megaT > 0 {
		r.Note("speedup to shared val loss %.4f: %.2fx (dgl %v vs mega %v)",
			target, float64(dglT)/float64(megaT), round(dglT), round(megaT))
	}
	lastDGL := dglRes.Stats[len(dglRes.Stats)-1]
	lastMega := megaRes.Stats[len(megaRes.Stats)-1]
	r.Note("epoch-time ratio %.2fx; final val metric: dgl %.4f vs mega %.4f (paper: comparable accuracy)",
		float64(lastDGL.SimTime)/float64(lastMega.SimTime),
		dglRes.FinalMetric(), megaRes.FinalMetric())
	return r, nil
}

// bestValLoss returns the minimum validation loss across epochs.
func bestValLoss(res *train.Result) float64 {
	best := res.Stats[0].ValLoss
	for _, s := range res.Stats[1:] {
		if s.ValLoss < best {
			best = s.ValLoss
		}
	}
	return best
}

func round(d time.Duration) time.Duration { return d.Round(10 * time.Microsecond) }

// Fig11 reproduces Figure 11: AQSOL convergence (paper: ~2.6x).
func Fig11(s Scale) (*Report, error) {
	return convergence("fig11", "AQSOL convergence (GCN)", "AQSOL", "GCN", s, models.MegaOptions{})
}

// Fig12 reproduces Figure 12: ZINC convergence under GT (paper: ~2x).
func Fig12(s Scale) (*Report, error) {
	return convergence("fig12", "ZINC convergence (GT)", "ZINC", "GT", s, models.MegaOptions{})
}

// Fig13 reproduces Figure 13: CSL convergence (paper: ~2.2x).
func Fig13(s Scale) (*Report, error) {
	return convergence("fig13", "CSL convergence (GT)", "CSL", "GT", s, models.MegaOptions{})
}

// Fig14 reproduces Figure 14: CYCLES convergence under GCN (paper: ~1.6x).
func Fig14(s Scale) (*Report, error) {
	return convergence("fig14", "CYCLES convergence (GCN)", "CYCLES", "GCN", s, models.MegaOptions{})
}

// Fig15 reproduces Figure 15: AQSOL with 20% edge dropping enabled in the
// path representation (paper: 5.9x at unchanged accuracy).
func Fig15(s Scale) (*Report, error) {
	opts := models.MegaOptions{Traverse: traverse.Options{
		Window: 0, EdgeCoverage: 1, DropEdges: 0.2, Start: -1, Seed: s.Seed,
	}}
	r, err := convergence("fig15", "AQSOL convergence with 20% edge dropping (GCN)", "AQSOL", "GCN", s, opts)
	if err != nil {
		return nil, err
	}
	r.Note("edge dropping removes 20%% of edges before traversal: shorter paths, fewer band pairs, same readout task")
	return r, nil
}
