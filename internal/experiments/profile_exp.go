package experiments

import (
	"fmt"
	"math/rand"

	"mega/internal/datasets"
	"mega/internal/gpusim"
	"mega/internal/graph"
	"mega/internal/models"
)

// Fig1b reproduces Figure 1b: the ratio of graph-attention completion time
// to global-attention completion time on same-size graphs, as size grows
// and the graph becomes relatively sparser (fixed mean degree). Ratios
// above 1 mean the sparse computation loses to the dense one despite doing
// less arithmetic.
func Fig1b(s Scale) (*Report, error) {
	r := &Report{ID: "fig1b", Title: "graph attention vs global attention time ratio"}
	rng := rand.New(rand.NewSource(s.Seed))
	const meanDeg = 4
	r.Add("%8s %6s %14s %14s %8s", "nodes", "dim", "graphAtt(us)", "globalAtt(us)", "ratio")
	var firstRatio, lastRatio float64
	for _, n := range []int{128, 256, 512, 1024, 2048} {
		for _, dim := range []int{16, 64, 256} {
			g := graph.ErdosRenyiM(rng, n, n*meanDeg/2)
			sparse := attentionCostSparse(g, dim)
			dense := attentionCostGlobal(n, dim)
			ratio := sparse / dense
			r.Add("%8d %6d %14.1f %14.1f %8.2f", n, dim, sparse/1.6e3, dense/1.6e3, ratio)
			if n == 128 && dim == 256 {
				firstRatio = ratio
			}
			if n == 2048 && dim == 16 {
				lastRatio = ratio
			}
		}
	}
	r.Note("paper: ratio > 1 and growing as graphs get bigger/sparser (smaller dim)")
	r.Note("measured: ratio at (n=128,d=256) %.2f vs (n=2048,d=16) %.2f", firstRatio, lastRatio)
	return r, nil
}

// attentionCostSparse charges one graph-attention layer through the DGL
// kernel model and returns simulated cycles.
func attentionCostSparse(g *graph.Graph, dim int) float64 {
	sim := gpusim.New(gpusim.GTX1080())
	n, m := g.NumNodes(), g.NumEdges()
	rowBytes := int64(dim) * 4
	nodeBuf := sim.Alloc(int64(n) * rowBytes)
	src := make([]int32, 0, 2*m)
	dst := make([]int32, 0, 2*m)
	for _, e := range g.Edges() {
		src = append(src, e.Src, e.Dst)
		dst = append(dst, e.Dst, e.Src)
	}
	// Q/K/V projections are shared with global attention.
	sim.Sgemm(n, dim, dim)
	sim.Sgemm(n, dim, dim)
	sim.Sgemm(n, dim, dim)
	// Per-edge score + aggregation: gather q, gather k, scatter weighted v.
	sim.Sort("cub", len(src), 4)
	sim.GatherRows("dgl", nodeBuf, dst, rowBytes)
	sim.GatherRows("dgl", nodeBuf, src, rowBytes)
	sim.Elementwise("score", len(src), 8)
	sim.GatherRows("dgl", nodeBuf, src, rowBytes)
	sim.ScatterRows("dgl", nodeBuf, dst, rowBytes)
	return sim.TotalCycles()
}

// attentionCostGlobal charges one dense global-attention layer (the
// transformer pattern) and returns simulated cycles.
func attentionCostGlobal(n, dim int) float64 {
	sim := gpusim.New(gpusim.GTX1080())
	sim.Sgemm(n, dim, dim) // Q
	sim.Sgemm(n, dim, dim) // K
	sim.Sgemm(n, dim, dim) // V
	sim.Sgemm(n, dim, n)   // QK^T
	sim.Elementwise("softmax", n*n, 4)
	sim.Sgemm(n, n, dim) // alpha V
	return sim.TotalCycles()
}

// Table1 reproduces Table I: parameter volume and graph-operation counts
// per model configuration, measured on the actual implementations.
func Table1(s Scale) (*Report, error) {
	r := &Report{ID: "table1", Title: "model configuration statistics"}
	d := s.Dim
	insts := syntheticBatch(s.Seed, 2)
	ctx, err := models.NewDGLContext(insts, nil, d)
	if err != nil {
		return nil, err
	}
	cfg := models.Config{Dim: d, Layers: 1, Heads: 4, NodeTypes: 28, EdgeTypes: 4, OutDim: 1, Seed: s.Seed}
	gcn := models.NewGatedGCN(cfg)
	gt := models.NewGT(cfg)
	gcnOps := gcn.CountOps(ctx)
	gtOps := gt.CountOps(ctx)

	r.Add("%-28s %10s %10s", "", "GCN", "GT")
	r.Add("%-28s %9.1fd² %9.1fd²", "Attention params (per layer)",
		layerParamsPerD2(gcnOps.Params, cfg), layerParamsPerD2(gtOps.Params, cfg))
	r.Add("%-28s %10d %10d", "Scatter (edge) calls/layer", gcnOps.ScatterCalls, gtOps.ScatterCalls)
	r.Add("%-28s %10d %10d", "Gather (node) calls/layer", gcnOps.GatherCalls, gtOps.GatherCalls)
	r.Add("%-28s %10d %10d", "Linear calls/layer", gcnOps.LinearCalls, gtOps.LinearCalls)
	r.Note("paper: 5d² vs 14d² params; scatter x1 vs x5; gather x2 vs x2")
	r.Note("GT / GCN edge-op ratio measured: %.1fx", float64(gtOps.GatherCalls+gtOps.ScatterCalls)/float64(gcnOps.GatherCalls+gcnOps.ScatterCalls))
	return r, nil
}

// layerParamsPerD2 isolates the attention-layer parameter volume in units
// of d².
func layerParamsPerD2(total int, cfg models.Config) float64 {
	embed := cfg.NodeTypes*cfg.Dim + cfg.EdgeTypes*cfg.Dim
	readout := cfg.Dim*(cfg.Dim/2) + cfg.Dim/2 + (cfg.Dim/2)*cfg.OutDim + cfg.OutDim
	layer := float64(total-embed-readout) / float64(cfg.Layers)
	return layer / float64(cfg.Dim*cfg.Dim)
}

// syntheticBatch builds a few ZINC-like instances for probe contexts.
func syntheticBatch(seed int64, n int) []datasets.Instance {
	d := datasets.ZINC(datasets.Config{TrainSize: n, ValSize: 0, TestSize: 0, Seed: seed})
	return d.Train
}

// profiledStep runs one profiled forward+backward of model over the first
// MaxBatches batches of ds's train split with the given engine, returning
// the simulator.
func profiledStep(ds *datasets.Dataset, model models.Model, engine models.EngineKind, s Scale, batch, dim int) (*gpusim.Sim, error) {
	maxB := s.MaxBatches
	if maxB <= 0 {
		maxB = 1
	}
	return profiledInstances(ds.Train, capCount(len(ds.Train), maxB*batch), model, engine, batch, dim)
}

// profiledEpoch profiles a full pass over a fixed instance pool — the
// per-epoch framing where batch size trades launches against work per
// launch (Figure 5's amortization effect).
func profiledEpoch(ds *datasets.Dataset, model models.Model, engine models.EngineKind, pool, batch, dim int) (*gpusim.Sim, error) {
	return profiledInstances(ds.Train, capCount(len(ds.Train), pool), model, engine, batch, dim)
}

func capCount(have, want int) int {
	if want > have {
		return have
	}
	return want
}

func profiledInstances(insts []datasets.Instance, total int, model models.Model, engine models.EngineKind, batch, dim int) (*gpusim.Sim, error) {
	sim := gpusim.New(gpusim.GTX1080())
	for lo := 0; lo < total; lo += batch {
		hi := lo + batch
		if hi > total {
			hi = total
		}
		var ctx *models.Context
		var err error
		if engine == models.EngineMega {
			ctx, err = models.NewMegaContext(insts[lo:hi], models.MegaOptions{}, sim, dim)
		} else {
			ctx, err = models.NewDGLContext(insts[lo:hi], sim, dim)
		}
		if err != nil {
			return nil, err
		}
		_ = model.Forward(ctx)
		ctx.Prof.Backward()
	}
	return sim, nil
}

// buildModel constructs a model for a dataset at the given dimension.
func buildModel(name string, ds *datasets.Dataset, dim int, seed int64) models.Model {
	cfg := models.Config{
		Dim: dim, Layers: 4, Heads: 4,
		NodeTypes: ds.NumNodeTypes, EdgeTypes: ds.NumEdgeTypes,
		OutDim: 1, Seed: seed,
	}
	if ds.Task == datasets.TaskClassification {
		cfg.OutDim = ds.NumClasses
	}
	if name == "GT" {
		return models.NewGT(cfg)
	}
	return models.NewGatedGCN(cfg)
}

func loadDataset(name string, s Scale) (*datasets.Dataset, error) {
	return datasets.Generate(name, datasets.Config{
		TrainSize: s.Train, ValSize: s.Val, TestSize: s.Test, Seed: s.Seed,
	})
}

// Fig4 reproduces Figure 4: per-kernel SM efficiency of the conventional
// (DGL) execution, batch 64, hidden 128 — sgemm far above cub and dgl.
func Fig4(s Scale) (*Report, error) {
	r := &Report{ID: "fig4", Title: "SM efficiency per kernel (DGL engine)"}
	r.Add("%-8s %-6s %10s %10s %10s %12s", "dataset", "model", "sgemm", "cub", "dgl", "elementwise")
	var sgemmMin, graphMax float64 = 1, 0
	for _, dsName := range datasets.Names() {
		ds, err := loadDataset(dsName, s)
		if err != nil {
			return nil, err
		}
		for _, m := range []string{"GCN", "GT"} {
			model := buildModel(m, ds, s.Dim, s.Seed)
			sim, err := profiledStep(ds, model, models.EngineDGL, s, s.Batch, s.Dim)
			if err != nil {
				return nil, err
			}
			eff := func(name string) float64 {
				k, ok := sim.Kernel(name)
				if !ok {
					return 0
				}
				return k.SMEfficiency()
			}
			gatherEff := avg(eff("dgl-gather"), eff("dgl-scatter"))
			r.Add("%-8s %-6s %10.3f %10.3f %10.3f %12.3f",
				dsName, m, eff("sgemm"), eff("cub"), gatherEff, eff("elementwise"))
			if e := eff("sgemm"); e < sgemmMin {
				sgemmMin = e
			}
			if gatherEff > graphMax {
				graphMax = gatherEff
			}
			if e := eff("cub"); e > graphMax {
				graphMax = e
			}
		}
	}
	r.Note("paper: sgemm efficiency far above cub/dgl in every setting")
	r.Note("measured: min sgemm eff %.3f vs max graph-kernel eff %.3f", sgemmMin, graphMax)
	return r, nil
}

func avg(xs ...float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Fig5 reproduces Figure 5: runtime percentage per kernel class for batch
// sizes 128 and 256 at hidden 64 — larger batches amortise graph kernels.
func Fig5(s Scale) (*Report, error) {
	r := &Report{ID: "fig5", Title: "kernel time share by batch size (DGL engine)"}
	batches := []int{s.Batch, 2 * s.Batch}
	r.Add("%-8s %-6s %6s %8s %8s %8s %8s", "dataset", "model", "batch", "sgemm", "graph", "elemwise", "memcpy")
	// Per-epoch framing: a fixed instance pool split into varying batch
	// sizes, so bigger batches amortise launches (the paper's effect).
	pool := 4 * batches[len(batches)-1]
	for _, dsName := range datasets.Names() {
		ds, err := loadDataset(dsName, s)
		if err != nil {
			return nil, err
		}
		for _, m := range []string{"GCN", "GT"} {
			for _, b := range batches {
				model := buildModel(m, ds, 64, s.Seed)
				sim, err := profiledEpoch(ds, model, models.EngineDGL, pool, b, 64)
				if err != nil {
					return nil, err
				}
				share := sim.KernelTimeShare()
				graph := share["dgl-gather"] + share["dgl-scatter"] + share["cub"]
				r.Add("%-8s %-6s %6d %8.3f %8.3f %8.3f %8.3f",
					dsName, m, b, share["sgemm"], graph, share["elementwise"], share["memcpy"])
			}
		}
	}
	r.Note("paper: graph-kernel share shrinks and sgemm share grows with batch size")
	return r, nil
}

// Fig6 reproduces Figure 6 (the profiling panel): global-load transactions,
// memory-stall percentage, and call counts per kernel under the baseline.
func Fig6(s Scale) (*Report, error) {
	r := &Report{ID: "fig6", Title: "kernel profile: loads / stall% / calls (DGL engine)"}
	ds, err := loadDataset("ZINC", s)
	if err != nil {
		return nil, err
	}
	for _, m := range []string{"GCN", "GT"} {
		model := buildModel(m, ds, s.Dim, s.Seed)
		sim, err := profiledStep(ds, model, models.EngineDGL, s, s.Batch, s.Dim)
		if err != nil {
			return nil, err
		}
		r.Add("%s:", m)
		r.Add("  %-12s %14s %10s %8s", "kernel", "globalLoads", "stall%", "calls")
		for _, k := range sim.Stats() {
			r.Add("  %-12s %14d %10.3f %8d", k.Name, k.LoadTransactions, k.StallPct(), k.Calls)
		}
	}
	r.Note("paper: cub/dgl kernels show the stall percentages and load volumes that dominate GNN inefficiency")
	return r, nil
}

// Fig9 reproduces Figure 9: weighted SM efficiency and memory-stall
// percentage, DGL vs MEGA, for both models across all datasets.
func Fig9(s Scale) (*Report, error) {
	r := &Report{ID: "fig9", Title: "memory metrics: DGL vs MEGA"}
	r.Add("%-8s %-6s %12s %12s %12s %12s", "dataset", "model", "dgl SMeff", "mega SMeff", "dgl stall", "mega stall")
	worstMega, bestDGL := 1.0, 0.0
	for _, dsName := range datasets.Names() {
		ds, err := loadDataset(dsName, s)
		if err != nil {
			return nil, err
		}
		for _, m := range []string{"GCN", "GT"} {
			model := buildModel(m, ds, s.Dim, s.Seed)
			dglSim, err := profiledStep(ds, model, models.EngineDGL, s, s.Batch, s.Dim)
			if err != nil {
				return nil, err
			}
			megaSim, err := profiledStep(ds, model, models.EngineMega, s, s.Batch, s.Dim)
			if err != nil {
				return nil, err
			}
			r.Add("%-8s %-6s %12.3f %12.3f %12.3f %12.3f",
				dsName, m,
				dglSim.WeightedSMEfficiency(), megaSim.WeightedSMEfficiency(),
				dglSim.WeightedStallPct(), megaSim.WeightedStallPct())
			if e := megaSim.WeightedSMEfficiency(); e < worstMega {
				worstMega = e
			}
			if e := dglSim.WeightedSMEfficiency(); e > bestDGL {
				bestDGL = e
			}
		}
	}
	r.Note("paper: MEGA holds stable high SM efficiency and low stalls across all settings")
	r.Note("measured: worst MEGA SMeff %.3f vs best DGL SMeff %.3f", worstMega, bestDGL)
	return r, nil
}

// Fig10 reproduces Figure 10: per-epoch simulated runtime and the sgemm
// share for batch sizes {64, 128, 256}, both engines.
func Fig10(s Scale) (*Report, error) {
	r := &Report{ID: "fig10", Title: "epoch runtime and sgemm share by batch size"}
	batches := []int{s.Batch, 2 * s.Batch, 4 * s.Batch}
	r.Add("%-8s %-6s %6s %14s %14s %9s %10s %10s", "dataset", "model", "batch",
		"dgl epoch(ms)", "mega epoch(ms)", "speedup", "dgl sgemm", "mega sgemm")
	for _, dsName := range datasets.Names() {
		ds, err := loadDataset(dsName, s)
		if err != nil {
			return nil, err
		}
		for _, m := range []string{"GCN", "GT"} {
			for _, b := range batches {
				model := buildModel(m, ds, 64, s.Seed)
				dglSim, err := profiledStep(ds, model, models.EngineDGL, s, b, 64)
				if err != nil {
					return nil, err
				}
				megaSim, err := profiledStep(ds, model, models.EngineMega, s, b, 64)
				if err != nil {
					return nil, err
				}
				dglMs := dglSim.TotalTime().Seconds() * 1e3
				megaMs := megaSim.TotalTime().Seconds() * 1e3
				megaShare := megaSim.KernelTimeShare()
				r.Add("%-8s %-6s %6d %14.3f %14.3f %9.2fx %10.3f %10.3f",
					dsName, m, b, dglMs, megaMs, dglMs/megaMs,
					dglSim.KernelTimeShare()["sgemm"], megaShare["sgemm"]+megaShare["mega-band"])
			}
		}
	}
	r.Note("paper: MEGA lowers epoch time in all settings; GT gains more than GCN")
	return r, nil
}

// Dist reproduces the §IV-B6 distributed communication analysis.
func Dist(s Scale) (*Report, error) {
	return distReport(s)
}

var _ = fmt.Sprintf
