package experiments

import (
	"math/rand"
	"time"

	"mega/internal/band"
	"mega/internal/dynamic"
	"mega/internal/gpusim"
	"mega/internal/graph"
	"mega/internal/hetero"
	"mega/internal/models"
	"mega/internal/reorder"
	"mega/internal/train"
	"mega/internal/traverse"
)

// Extension experiments: not figures in the paper, but quantitative support
// for its related-work positioning (§II-B2 reordering) and discussion
// items (§IV-B8 SparseGAT-style dropping, HAN-style heterogeneity, DYGAT
// dynamic graphs).

// ExtReorder compares GNNAdvisor-style node reorderings against MEGA's
// restructuring on the same aggregation workload — the quantitative form
// of the paper's "a universal reordering solution is not adept" argument.
func ExtReorder(s Scale) (*Report, error) {
	r := &Report{ID: "ext-reorder", Title: "reordering baselines vs MEGA restructuring (extension)"}
	rng := rand.New(rand.NewSource(s.Seed))
	// 60k vertices at 64 B rows = 3.75 MB, exceeding the 2 MiB L2 so that
	// ordering actually determines hit rates.
	base := graph.BarabasiAlbert(rng, 60000, 3)
	scramble := graph.RandomPermutation(rng, base.NumNodes())
	g, err := graph.PermuteNodes(base, scramble)
	if err != nil {
		return nil, err
	}
	const dim = 16
	scrambledCost := reorder.GatherCost(g, dim)
	r.Add("%-12s %14s %10s %12s", "layout", "cycles", "speedup", "bandwidth")
	r.Add("%-12s %14.0f %9.2fx %12d", "scrambled", scrambledCost, 1.0, reorder.Bandwidth(g))
	for _, p := range []reorder.Policy{reorder.DegreeSort, reorder.BFSOrder, reorder.RCM} {
		rg, _, err := reorder.Apply(g, p)
		if err != nil {
			return nil, err
		}
		cost := reorder.GatherCost(rg, dim)
		r.Add("%-12s %14.0f %9.2fx %12d", p.String(), cost, scrambledCost/cost, reorder.Bandwidth(rg))
	}
	// MEGA restructuring on the same workload.
	rep, _, err := band.FromGraph(g, traverse.DefaultOptions())
	if err != nil {
		return nil, err
	}
	megaCost := bandCost(rep, dim)
	r.Add("%-12s %14.0f %9.2fx %12s", "mega-band", megaCost, scrambledCost/megaCost, "-")
	r.Note("paper §II-B2: reordering helps locality but cannot regularise the access pattern; MEGA restructures it")
	return r, nil
}

// bandCost replays one band sweep for the representation.
func bandCost(rep *band.Rep, dim int) float64 {
	sim := gpusim.New(gpusim.GTX1080())
	rowBytes := int64(dim) * 4
	base := sim.Alloc(int64(rep.Len()) * rowBytes)
	sim.BandSweep("band", base, rep.Len(), 2*rep.Window, rowBytes)
	return sim.TotalCycles()
}

// ExtHetero compares layout strategies for heterogeneous graphs.
func ExtHetero(s Scale) (*Report, error) {
	r := &Report{ID: "ext-hetero", Title: "heterogeneous multi-path layouts (extension, §IV-B8)"}
	rng := rand.New(rand.NewSource(s.Seed))
	// Two-type structure: dense intra-type rings with sparse bridges.
	const perType = 600
	var edges []graph.Edge
	for t := 0; t < 2; t++ {
		off := graph.NodeID(t * perType)
		for v := 0; v < perType; v++ {
			edges = append(edges,
				graph.Edge{Src: off + graph.NodeID(v), Dst: off + graph.NodeID((v+1)%perType)},
				graph.Edge{Src: off + graph.NodeID(v), Dst: off + graph.NodeID((v+7)%perType)})
		}
	}
	for i := 0; i < perType/4; i++ {
		edges = append(edges, graph.Edge{
			Src: graph.NodeID(rng.Intn(perType)),
			Dst: graph.NodeID(perType + rng.Intn(perType)),
		})
	}
	g, err := graph.New(2*perType, edges, false)
	if err != nil {
		return nil, err
	}
	types := make([]int32, 2*perType)
	for v := perType; v < 2*perType; v++ {
		types[v] = 1
	}
	tg, err := hetero.NewTypedGraph(g, types, 2)
	if err != nil {
		return nil, err
	}
	costs, err := hetero.CompareCost(tg, traverse.DefaultOptions(), s.Dim)
	if err != nil {
		return nil, err
	}
	mr, err := hetero.BuildMultiPath(tg, traverse.DefaultOptions())
	if err != nil {
		return nil, err
	}
	r.Add("%-16s %14s %10s", "strategy", "cycles", "speedup")
	r.Add("%-16s %14.0f %9.2fx", "gather/scatter", costs.Baseline, 1.0)
	r.Add("%-16s %14.0f %9.2fx", "flat path", costs.Flat, costs.Baseline/costs.Flat)
	r.Add("%-16s %14.0f %9.2fx", "multi-path", costs.MultiPath, costs.Baseline/costs.MultiPath)
	r.Add("multi-path coverage: %.1f%% (%d intra + %d bridge edges), total path %d",
		100*mr.Coverage(), mr.IntraEdges, mr.InterEdges, mr.TotalPathLen())
	r.Note("per-type paths keep type semantics (HAN) while retaining banded efficiency")
	return r, nil
}

// ExtDynamic measures incremental repair latency against full re-traversal.
func ExtDynamic(s Scale) (*Report, error) {
	r := &Report{ID: "ext-dynamic", Title: "dynamic graph maintenance latency (extension, §IV-B8)"}
	rng := rand.New(rand.NewSource(s.Seed))
	g := graph.BarabasiAlbert(rng, 3000, 3)
	m, err := dynamic.NewMaintainer(g, traverse.DefaultOptions())
	if err != nil {
		return nil, err
	}

	const updates = 200
	var prefixSum int
	start := time.Now()
	for i := 0; i < updates; {
		u := graph.NodeID(rng.Intn(3000))
		v := graph.NodeID(rng.Intn(3000))
		if u == v {
			continue
		}
		rep, err := m.AddEdge(u, v)
		if err != nil {
			continue
		}
		prefixSum += rep.PrefixRows
		i++
	}
	incTotal := time.Since(start)

	start = time.Now()
	if _, _, err := band.FromGraph(m.Graph(), traverse.DefaultOptions()); err != nil {
		return nil, err
	}
	rebuildOnce := time.Since(start)

	perUpdate := incTotal / updates
	r.Add("%d updates: %d splices, %d rebuilds, mean replayed prefix %.0f rows, expansion %.2fx",
		updates, m.Splices(), m.Rebuilds(), float64(prefixSum)/updates, m.Rep().Expansion())
	r.Add("incremental: %v/update;  full re-traversal: %v", perUpdate, rebuildOnce)
	if perUpdate > 0 {
		r.Add("latency ratio: one rebuild costs %.0fx one incremental update",
			float64(rebuildOnce)/float64(perUpdate))
	}
	r.Note("incremental maintenance keeps per-update latency far below re-traversal (DYGAT-style online use)")
	return r, nil
}

// ExtDropStrategy compares random against redundancy-targeted edge dropping
// end to end on AQSOL — extending the Figure 15 experiment with the
// SparseGAT-inspired policy.
func ExtDropStrategy(s Scale) (*Report, error) {
	r := &Report{ID: "ext-drop", Title: "edge-drop strategies: random vs redundancy-targeted (extension)"}
	ds, err := loadDataset("AQSOL", s)
	if err != nil {
		return nil, err
	}
	run := func(strategy traverse.DropStrategy) (*train.Result, error) {
		return train.Run(ds, train.Options{
			Model: "GCN", Engine: models.EngineMega,
			Dim: s.Dim, Layers: 4, BatchSize: s.Batch, LR: 1e-3,
			Epochs: s.Epochs, Seed: s.Seed, Profile: true,
			Mega: models.MegaOptions{Traverse: traverse.Options{
				EdgeCoverage: 1, DropEdges: 0.2, DropStrategy: strategy,
				Start: -1, Seed: s.Seed,
			}},
		})
	}
	randomRes, err := run(traverse.DropRandom)
	if err != nil {
		return nil, err
	}
	redundantRes, err := run(traverse.DropRedundant)
	if err != nil {
		return nil, err
	}
	r.Add("%-10s %14s %12s", "strategy", "simTime(ms)", "final MAE")
	for _, row := range []struct {
		name string
		res  *train.Result
	}{
		{name: "random", res: randomRes},
		{name: "redundant", res: redundantRes},
	} {
		last := row.res.Stats[len(row.res.Stats)-1]
		r.Add("%-10s %14.3f %12.4f", row.name, last.SimTime.Seconds()*1e3, last.ValMetric)
	}
	r.Note("redundancy-targeted dropping trims hub edges, shortening paths at similar accuracy")
	return r, nil
}

// ExtImbalance quantifies §II-B2's workload-imbalance bottleneck: naive
// destination-major aggregation on a power-law graph vs GNNAdvisor-style
// neighbor grouping vs MEGA's band sweep (which has no per-destination
// segments at all).
func ExtImbalance(s Scale) (*Report, error) {
	r := &Report{ID: "ext-imbalance", Title: "workload imbalance: naive vs neighbor grouping vs MEGA (extension)"}
	rng := rand.New(rand.NewSource(s.Seed))
	g := graph.BarabasiAlbert(rng, 5000, 3)
	degs := g.Degrees()
	segs := make([]int32, len(degs))
	maxDeg := 0
	for i, d := range degs {
		segs[i] = int32(d)
		if d > maxDeg {
			maxDeg = d
		}
	}
	const rowBytes = 256
	run := func(grouped bool) float64 {
		sim := gpusim.New(gpusim.GTX1080())
		base := sim.Alloc(int64(len(segs)) * rowBytes)
		sim.ScatterSegments("agg", base, segs, rowBytes, grouped)
		return sim.TotalCycles()
	}
	naive := run(false)
	grouped := run(true)
	rep, _, err := band.FromGraph(g, traverse.DefaultOptions())
	if err != nil {
		return nil, err
	}
	mega := bandCost(rep, rowBytes/4)
	r.Add("graph: %d vertices, mean degree %.1f, max degree %d", g.NumNodes(), g.MeanDegree(), maxDeg)
	r.Add("%-20s %14s %10s", "strategy", "cycles", "speedup")
	r.Add("%-20s %14.0f %10s", "naive scatter", naive, "1.00x")
	r.Add("%-20s %14.0f %9.2fx", "neighbor grouping", grouped, naive/grouped)
	r.Add("%-20s %14.0f %9.2fx", "mega band", mega, naive/mega)
	r.Note("grouping fixes the tail; MEGA removes per-destination segments entirely")
	return r, nil
}
