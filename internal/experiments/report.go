// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md for the experiment index). Each driver returns
// a Report — a titled block of formatted rows — so the same code serves the
// megabench CLI, the benchmark harness, and EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"
)

// Report is one regenerated table or figure.
type Report struct {
	// ID is the experiment identifier ("fig1b", "table2", ...).
	ID string
	// Title describes what the paper shows there.
	Title string
	// Lines are the formatted data rows.
	Lines []string
	// Notes records shape observations (who wins, by what factor).
	Notes []string
}

// Add appends a formatted line.
func (r *Report) Add(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// Note appends a formatted note.
func (r *Report) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report as indented text.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString("  ")
		b.WriteString(l)
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		b.WriteString("  # ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// Scale sizes an experiment run: Quick for tests/benches, Paper for the
// full-size reproduction.
type Scale struct {
	// Train/Val/Test size generated datasets (0 = the paper's split
	// sizes).
	Train, Val, Test int
	// Epochs bounds convergence runs.
	Epochs int
	// Dim is the hidden dimension for profile experiments.
	Dim int
	// Batch is the default batch size.
	Batch int
	// MaxBatches caps how many batches profile experiments run (0 = 1).
	MaxBatches int
	// Seed seeds everything.
	Seed int64
}

// Quick returns the scaled-down configuration used by tests and the
// benchmark harness: small datasets, few epochs, one profiled batch.
func Quick() Scale {
	return Scale{
		Train: 64, Val: 16, Test: 16,
		Epochs: 3, Dim: 32, Batch: 16, MaxBatches: 1, Seed: 7,
	}
}

// Paper returns the full-size configuration matching the paper's setup
// (batch 64, hidden 128, full dataset splits). Expect long runtimes.
func Paper() Scale {
	return Scale{
		Train: 0, Val: 0, Test: 0,
		Epochs: 30, Dim: 128, Batch: 64, MaxBatches: 4, Seed: 7,
	}
}

// Medium sits between Quick and Paper: big enough for stable shapes,
// small enough for interactive runs.
func Medium() Scale {
	return Scale{
		Train: 512, Val: 128, Test: 128,
		Epochs: 10, Dim: 64, Batch: 64, MaxBatches: 2, Seed: 7,
	}
}

// Runner maps experiment IDs to drivers.
type Runner func(Scale) (*Report, error)

// All returns every experiment keyed by ID, in the paper's order.
func All() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{ID: "fig1b", Run: Fig1b},
		{ID: "table1", Run: Table1},
		{ID: "table2", Run: Table2},
		{ID: "table3", Run: Table3},
		{ID: "fig4", Run: Fig4},
		{ID: "fig5", Run: Fig5},
		{ID: "fig6", Run: Fig6},
		{ID: "fig8", Run: Fig8},
		{ID: "fig9", Run: Fig9},
		{ID: "fig10", Run: Fig10},
		{ID: "fig11", Run: Fig11},
		{ID: "fig12", Run: Fig12},
		{ID: "fig13", Run: Fig13},
		{ID: "fig14", Run: Fig14},
		{ID: "fig15", Run: Fig15},
		{ID: "dist", Run: Dist},
		{ID: "ext-reorder", Run: ExtReorder},
		{ID: "ext-hetero", Run: ExtHetero},
		{ID: "ext-dynamic", Run: ExtDynamic},
		{ID: "ext-drop", Run: ExtDropStrategy},
		{ID: "ext-imbalance", Run: ExtImbalance},
		{ID: "ext-sparsify", Run: ExtSparsify},
	}
}

// ByID returns the driver for one experiment ID.
func ByID(id string) (Runner, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e.Run, true
		}
	}
	return nil, false
}
