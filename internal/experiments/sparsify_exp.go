package experiments

import (
	"mega/internal/datasets"
	"mega/internal/gpusim"
	"mega/internal/models"
	"mega/internal/train"
	"mega/internal/traverse"
)

// sparsifyKeepFractions is the keep-fraction axis of the sparsification
// matrix; 1.0 is the unsparsified baseline.
var sparsifyKeepFractions = []float64{1.0, 0.75, 0.5, 0.25}

// sparsifyStats aggregates traversal-shape metrics over a dataset's train
// split at one keep fraction.
type sparsifyStats struct {
	MeanWindow    float64 // mean effective band half-width ω
	MeanRevisits  float64
	MeanExpansion float64 // path length / n
	MeanKeptEdges float64 // surviving edges per instance
	Cycles        float64 // simulated gpusim cycles of a profiled step
}

// sparsifyMegaOptions is the preprocessing configuration for one keep
// fraction (1.0 = no sparsification, the baseline options).
func sparsifyMegaOptions(frac float64, seed int64) models.MegaOptions {
	o := traverse.Options{EdgeCoverage: 1, Start: -1}
	if frac < 1 {
		o.SparsifyFraction = frac
		o.SparsifySeed = seed
	}
	return models.MegaOptions{Traverse: o}
}

// measureSparsify computes traversal-shape and simulated-cost metrics for
// one dataset at one keep fraction.
func measureSparsify(ds *datasets.Dataset, model models.Model, frac float64, s Scale) (sparsifyStats, error) {
	var st sparsifyStats
	mo := sparsifyMegaOptions(frac, s.Seed)
	n := capCount(len(ds.Train), s.Batch)
	for _, inst := range ds.Train[:n] {
		res, err := traverse.Run(inst.G, mo.TraverseOptions())
		if err != nil {
			return st, err
		}
		st.MeanWindow += float64(res.Window)
		st.MeanRevisits += float64(res.Revisits)
		st.MeanExpansion += res.Expansion(inst.G.NumNodes())
		st.MeanKeptEdges += float64(res.TotalEdges)
	}
	st.MeanWindow /= float64(n)
	st.MeanRevisits /= float64(n)
	st.MeanExpansion /= float64(n)
	st.MeanKeptEdges /= float64(n)

	sim, err := profiledInstancesMega(ds.Train, n, model, mo, s.Batch, s.Dim)
	if err != nil {
		return st, err
	}
	st.Cycles = sim.TotalCycles()
	return st, nil
}

// profiledInstancesMega is profiledInstances with explicit MEGA
// preprocessing options, so sparsified contexts feed the simulator.
func profiledInstancesMega(insts []datasets.Instance, total int, model models.Model, mo models.MegaOptions, batch, dim int) (*gpusim.Sim, error) {
	sim := gpusim.New(gpusim.GTX1080())
	for lo := 0; lo < total; lo += batch {
		hi := lo + batch
		if hi > total {
			hi = total
		}
		ctx, err := models.NewMegaContext(insts[lo:hi], mo, sim, dim)
		if err != nil {
			return nil, err
		}
		_ = model.Forward(ctx)
		ctx.Prof.Backward()
	}
	return sim, nil
}

// ExtSparsify sweeps the effective-resistance keep fraction over the
// synthetic suites: band width, revisit count, path expansion, and
// simulated cycles per fraction, plus a convergence-shape comparison at
// keep 0.5 — the accuracy-vs-speed axis opened by spectral sparsification
// (Srinivasa et al.).
func ExtSparsify(s Scale) (*Report, error) {
	r := &Report{ID: "ext-sparsify", Title: "effective-resistance sparsification vs keep fraction (extension)"}
	r.Add("%-8s %6s %8s %10s %10s %10s %14s", "dataset", "keep", "window", "revisits", "expansion", "edges", "cycles")
	type baseRow struct{ window, cycles float64 }
	baselines := map[string]baseRow{}
	for _, dsName := range []string{"ZINC", "AQSOL", "CSL"} {
		ds, err := loadDataset(dsName, s)
		if err != nil {
			return nil, err
		}
		model := buildModel("GCN", ds, s.Dim, s.Seed)
		for _, frac := range sparsifyKeepFractions {
			st, err := measureSparsify(ds, model, frac, s)
			if err != nil {
				return nil, err
			}
			r.Add("%-8s %6.2f %8.2f %10.2f %10.2f %10.1f %14.0f",
				dsName, frac, st.MeanWindow, st.MeanRevisits, st.MeanExpansion, st.MeanKeptEdges, st.Cycles)
			if frac == 1.0 {
				baselines[dsName] = baseRow{window: st.MeanWindow, cycles: st.Cycles}
			} else if frac == 0.5 {
				b := baselines[dsName]
				r.Note("%s keep 0.5: band %.2f vs %.2f, cycles %.3gx of unsparsified",
					dsName, st.MeanWindow, b.window, st.Cycles/b.cycles)
			}
		}
	}

	// Convergence shape at keep 0.5 vs unsparsified, ZINC.
	ds, err := loadDataset("ZINC", s)
	if err != nil {
		return nil, err
	}
	runConv := func(frac float64) (*train.Result, error) {
		return train.Run(ds, train.Options{
			Model: "GCN", Engine: models.EngineMega,
			Dim: s.Dim, Layers: 4, BatchSize: s.Batch, LR: 1e-3,
			Epochs: s.Epochs, Seed: s.Seed, Profile: true,
			Mega: sparsifyMegaOptions(frac, s.Seed),
		})
	}
	full, err := runConv(1.0)
	if err != nil {
		return nil, err
	}
	half, err := runConv(0.5)
	if err != nil {
		return nil, err
	}
	fullLast := full.Stats[len(full.Stats)-1]
	halfLast := half.Stats[len(half.Stats)-1]
	r.Add("convergence (ZINC, %d epochs): keep 1.0 MAE %.4f in %.3fms, keep 0.5 MAE %.4f in %.3fms",
		s.Epochs, fullLast.ValMetric, fullLast.SimTime.Seconds()*1e3,
		halfLast.ValMetric, halfLast.SimTime.Seconds()*1e3)
	r.Note("sparsified preprocessing trades a bounded accuracy delta for smaller bands and fewer cycles")
	return r, nil
}
