package serve

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"mega/internal/dynamic"
	"mega/internal/graph"
	"mega/internal/models"
)

// The mutation subsystem turns the server's read-only representation cache
// into a versioned store over evolving graphs: POST /update applies an edge
// insert/delete batch against a cached fingerprint, repairs the path
// representation incrementally (prefix replay + band splice, falling back
// to a rebuild when the WL-delta policy says patching would not pay), and
// publishes the result under the successor fingerprint so the next /predict
// of the mutated graph is a cache hit.
//
// Sessions are copy-on-write by construction: a dynamic.Maintainer never
// mutates a committed rep in place, so the PreparedRep snapshots published
// into the RepCache stay immutable and safe to share with in-flight forward
// passes. Concurrent updates against the same base fingerprint fork — the
// first request takes the live session, later ones re-adopt from the cached
// snapshot — so every client observes a consistent lineage.

// Mutation subsystem errors (beyond the dynamic package's own taxonomy).
var (
	// ErrUnknownFingerprint rejects an update whose base fingerprint is in
	// neither the session pool nor the representation cache; HTTP maps it
	// to 404 — the client must re-send the full graph via "base".
	ErrUnknownFingerprint = errors.New("serve: unknown base fingerprint")
	// ErrMutationDisabled rejects updates on servers that cannot maintain
	// path representations (non-MEGA engine); HTTP maps it to 501.
	ErrMutationDisabled = errors.New("serve: mutation requires the MEGA engine")
)

// mutSession is one mutable lineage: a maintainer plus the lock that
// serialises batches against it. The pool hands a session to at most one
// request at a time (take removes it), so the mutex only guards against a
// session being re-keyed while a late Rebuild call still holds it.
type mutSession struct {
	mu sync.Mutex
	m  *dynamic.Maintainer
}

// mutatorPool is an LRU of mutation sessions keyed by their current
// (pre-update) fingerprint. Capacity bounds resident maintainers — each
// holds a live graph, WL tracker, and traversal — independently of the
// RepCache, whose entries stay cheap immutable snapshots.
type mutatorPool struct {
	mu       sync.Mutex
	capacity int
	order    *list.List
	items    map[graph.Fingerprint]*list.Element
}

type mutEntry struct {
	key  graph.Fingerprint
	sess *mutSession
}

func newMutatorPool(capacity int) *mutatorPool {
	return &mutatorPool{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[graph.Fingerprint]*list.Element),
	}
}

// take removes and returns the session for key, if resident. Removal is the
// fork point: a concurrent update against the same fingerprint misses here
// and re-adopts from the immutable cache snapshot instead of racing.
func (p *mutatorPool) take(key graph.Fingerprint) (*mutSession, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	el, ok := p.items[key]
	if !ok {
		return nil, false
	}
	p.order.Remove(el)
	delete(p.items, key)
	return el.Value.(*mutEntry).sess, true
}

// put re-homes a session under its successor fingerprint, evicting the
// least recently touched lineage beyond capacity. Evicted sessions are
// simply dropped: their published snapshots remain in the RepCache, so the
// lineage can be re-adopted later at the cost of one Adopt.
func (p *mutatorPool) put(key graph.Fingerprint, sess *mutSession) {
	if p.capacity <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.items[key]; ok {
		el.Value.(*mutEntry).sess = sess
		p.order.MoveToFront(el)
		return
	}
	for p.order.Len() >= p.capacity {
		oldest := p.order.Back()
		p.order.Remove(oldest)
		delete(p.items, oldest.Value.(*mutEntry).key)
	}
	p.items[key] = p.order.PushFront(&mutEntry{key: key, sess: sess})
}

// Len reports resident sessions (the mutation_sessions gauge).
func (p *mutatorPool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.order.Len()
}

// UpdateRequest is the POST /update JSON body. The base representation is
// addressed either by the fingerprint of a previously served or updated
// graph, or — when the server has never seen it — by the full graph in
// Base (same shape as /predict). Removes apply before adds, and the whole
// batch is validated against the base graph before any mutation lands, so
// a rejected batch leaves the lineage untouched.
type UpdateRequest struct {
	// Fingerprint addresses the base graph by its canonical topology hash
	// (lowercase hex, as returned in UpdateResponse.Fingerprint).
	Fingerprint string `json:"fingerprint,omitempty"`
	// Base supplies the full graph when no fingerprint is known. Node and
	// edge features are ignored — the path representation covers topology
	// only.
	Base *GraphRequest `json:"base,omitempty"`
	// Remove lists undirected edges to delete; each must exist.
	Remove [][2]int32 `json:"remove,omitempty"`
	// Add lists undirected edges to insert; each must be absent, in range,
	// and not a self-loop.
	Add [][2]int32 `json:"add,omitempty"`
}

// UpdateResponse reports the successor state after a batch. Fingerprint is
// the canonical hash of the mutated graph's edge list — removes compact the
// COO list preserving order, adds append as (min,max) — so a /predict that
// ships the same canonical edge order hits the published cache entry.
type UpdateResponse struct {
	Fingerprint string `json:"fingerprint"`
	NumNodes    int    `json:"num_nodes"`
	NumEdges    int    `json:"num_edges"`
	// PathLen is the maintained traversal's length; Expansion divides it by
	// NumNodes (the paper's path-expansion diagnostic).
	PathLen   int     `json:"path_len"`
	Expansion float64 `json:"expansion"`
	// Splices/Rebuilds count the repair operations this batch performed —
	// a multi-mutation batch is absorbed by ONE fused repair, so these sum
	// to 1 for batches of 2+ mutations. PrefixRows totals the replayed
	// prefix rows across splices (the work incremental maintenance avoided
	// re-deciding).
	Splices    int `json:"splices"`
	Rebuilds   int `json:"rebuilds"`
	PrefixRows int `json:"prefix_rows"`
	// Adopted reports that this update started a fresh session (from a
	// cached snapshot or the supplied base) rather than continuing a
	// resident one.
	Adopted bool `json:"adopted"`
}

// Update applies one mutation batch and publishes the successor
// representation. It is the programmatic core of POST /update; safe for
// concurrent callers.
func (s *Server) Update(req UpdateRequest) (UpdateResponse, error) {
	s.metrics.updates.Add(1)
	start := time.Now()
	resp, err := s.update(req)
	s.metrics.update.observe(time.Since(start))
	if err != nil {
		s.metrics.updateErrors.Add(1)
	}
	return resp, err
}

func (s *Server) update(req UpdateRequest) (UpdateResponse, error) {
	if s.opts.Engine != models.EngineMega {
		return UpdateResponse{}, ErrMutationDisabled
	}
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return UpdateResponse{}, ErrClosed
	}

	sess, adopted, err := s.resolveSession(req)
	if err != nil {
		return UpdateResponse{}, err
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()

	removes := pairList(req.Remove)
	adds := pairList(req.Add)
	t0 := time.Now()
	repairs, err := sess.m.ApplyBatch(removes, adds)
	s.metrics.repair.observe(time.Since(t0))
	if err != nil {
		// Validation failures leave the maintainer untouched; keep the
		// session resident under its unchanged fingerprint so the lineage
		// survives a bad batch. Internal failures poison the maintainer
		// (dynamic.ErrBroken thereafter), so those sessions are dropped —
		// the lineage re-adopts from its last published snapshot.
		if isMutationValidationErr(err) {
			s.mutators.put(sess.m.Fingerprint(), sess)
		}
		return UpdateResponse{}, err
	}
	s.metrics.mutationsApplied.Add(uint64(len(removes) + len(adds)))

	resp := UpdateResponse{
		Fingerprint: sess.m.Fingerprint().String(),
		NumNodes:    sess.m.NumNodes(),
		NumEdges:    sess.m.NumEdges(),
		PathLen:     len(sess.m.Result().Path),
		Adopted:     adopted,
	}
	if resp.NumNodes > 0 {
		resp.Expansion = float64(resp.PathLen) / float64(resp.NumNodes)
	}
	for _, r := range repairs {
		switch r.Kind {
		case dynamic.RepairSplice:
			resp.Splices++
			resp.PrefixRows += r.PrefixRows
		case dynamic.RepairRebuild:
			resp.Rebuilds++
		}
	}
	s.metrics.repairSplices.Add(uint64(resp.Splices))
	s.metrics.repairRebuilds.Add(uint64(resp.Rebuilds))

	// Publish the successor snapshot so /predict of the mutated graph is a
	// cache hit, then re-home the session under the new fingerprint. The
	// snapshot shares no mutable state with the session: repairs always
	// build fresh reps and swap pointers.
	next := sess.m.Fingerprint()
	s.cache.Put(s.repKey(next), &models.PreparedRep{Rep: sess.m.Rep(), Res: sess.m.Result()})
	s.mutators.put(next, sess)
	return resp, nil
}

// resolveSession finds or creates the mutable lineage for a request's base:
// a resident session by fingerprint, an Adopt of a cached snapshot, or a
// fresh maintainer over the supplied base graph (whose representation is
// published immediately, making the base itself cache-hot).
func (s *Server) resolveSession(req UpdateRequest) (*mutSession, bool, error) {
	hasFP := req.Fingerprint != ""
	if hasFP == (req.Base != nil) {
		return nil, false, fmt.Errorf("%w: exactly one of fingerprint or base is required", ErrInvalidInstance)
	}
	if hasFP {
		fp, err := graph.ParseFingerprint(req.Fingerprint)
		if err != nil {
			return nil, false, fmt.Errorf("%w: %v", ErrInvalidInstance, err)
		}
		if sess, ok := s.mutators.take(fp); ok {
			return sess, false, nil
		}
		prep, ok := s.cache.Get(s.repKey(fp))
		if !ok {
			return nil, false, fmt.Errorf("%w: %s", ErrUnknownFingerprint, req.Fingerprint)
		}
		m, err := dynamic.Adopt(prep.Rep, prep.Res, s.opts.Mega.TraverseOptions(), s.opts.MutationPolicy)
		if err != nil {
			return nil, false, err
		}
		s.metrics.sessionAdoptions.Add(1)
		return &mutSession{m: m}, true, nil
	}

	inst, err := req.Base.Instance()
	if err != nil {
		return nil, false, fmt.Errorf("%w: %v", ErrInvalidInstance, err)
	}
	fp := inst.G.Fingerprint()
	if sess, ok := s.mutators.take(fp); ok {
		return sess, false, nil
	}
	var m *dynamic.Maintainer
	if prep, ok := s.cache.Get(s.repKey(fp)); ok {
		m, err = dynamic.Adopt(prep.Rep, prep.Res, s.opts.Mega.TraverseOptions(), s.opts.MutationPolicy)
	} else {
		m, err = dynamic.NewMaintainerPolicy(inst.G, s.opts.Mega.TraverseOptions(), s.opts.MutationPolicy)
		if err == nil {
			s.cache.Put(s.repKey(fp), &models.PreparedRep{Rep: m.Rep(), Res: m.Result()})
		}
	}
	if err != nil {
		return nil, false, err
	}
	s.metrics.sessionAdoptions.Add(1)
	return &mutSession{m: m}, true, nil
}

// isMutationValidationErr reports whether an ApplyBatch error came from
// batch validation (maintainer state untouched) rather than a mid-repair
// internal failure.
func isMutationValidationErr(err error) bool {
	return errors.Is(err, dynamic.ErrEdgeExists) ||
		errors.Is(err, dynamic.ErrEdgeMissing) ||
		errors.Is(err, dynamic.ErrVertexRange) ||
		errors.Is(err, dynamic.ErrSelfLoop)
}

func pairList(edges [][2]int32) [][2]graph.NodeID {
	if len(edges) == 0 {
		return nil
	}
	out := make([][2]graph.NodeID, len(edges))
	for i, e := range edges {
		out[i] = [2]graph.NodeID{e[0], e[1]}
	}
	return out
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req UpdateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	resp, err := s.Update(req)
	switch {
	case errors.Is(err, dynamic.ErrEdgeExists), errors.Is(err, dynamic.ErrEdgeMissing):
		httpError(w, http.StatusConflict, err.Error())
		return
	case errors.Is(err, ErrInvalidInstance),
		errors.Is(err, dynamic.ErrVertexRange),
		errors.Is(err, dynamic.ErrSelfLoop),
		errors.Is(err, graph.ErrEdgeOutOfRange):
		httpError(w, http.StatusBadRequest, err.Error())
		return
	case errors.Is(err, ErrUnknownFingerprint):
		httpError(w, http.StatusNotFound, err.Error())
		return
	case errors.Is(err, ErrMutationDisabled), errors.Is(err, dynamic.ErrUnsupported):
		httpError(w, http.StatusNotImplemented, err.Error())
		return
	case errors.Is(err, ErrClosed):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}
