package serve

import (
	"testing"
	"time"
)

// fakeClock drives the breaker's time by hand.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testBreaker(threshold int, cooldown time.Duration) (*breaker, *fakeClock, *[]string) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	var transitions []string
	b := newBreaker(threshold, cooldown, func(from, to BreakerState) {
		transitions = append(transitions, string(from)+"->"+string(to))
	})
	b.now = clock.now
	return b, clock, &transitions
}

func TestBreakerTripsAfterThreshold(t *testing.T) {
	b, _, trans := testBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if !b.allow() {
			t.Fatalf("closed breaker refused attempt %d", i)
		}
		b.failure()
		if b.State() != BreakerClosed {
			t.Fatalf("opened after %d failures, threshold 3", i+1)
		}
	}
	b.allow()
	b.failure()
	if b.State() != BreakerOpen {
		t.Fatal("did not open at threshold")
	}
	if b.allow() {
		t.Fatal("open breaker admitted an attempt before cooldown")
	}
	if len(*trans) != 1 || (*trans)[0] != "closed->open" {
		t.Fatalf("transitions = %v", *trans)
	}
}

func TestBreakerSuccessResetsConsecutive(t *testing.T) {
	b, _, _ := testBreaker(3, time.Second)
	for i := 0; i < 10; i++ {
		b.allow()
		if i%2 == 0 {
			b.failure()
		} else {
			b.success()
		}
	}
	if b.State() != BreakerClosed {
		t.Fatal("interleaved successes should keep the breaker closed")
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b, clock, _ := testBreaker(1, time.Second)
	b.allow()
	b.failure() // trips immediately (threshold 1)
	if b.State() != BreakerOpen {
		t.Fatal("not open")
	}
	// Backoff(1) with 10% jitter is within [0.9s, 1.1s]; advance past it.
	clock.advance(2 * time.Second)
	if !b.allow() {
		t.Fatal("cooldown elapsed: probe should be admitted")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %s, want half-open", b.State())
	}
	if b.allow() {
		t.Fatal("second concurrent probe admitted in half-open")
	}
	b.success()
	if b.State() != BreakerClosed || !b.allow() {
		t.Fatal("probe success should close the breaker")
	}
}

func TestBreakerReopensWithLongerCooldown(t *testing.T) {
	b, clock, trans := testBreaker(1, time.Second)
	b.allow()
	b.failure()
	first := b.reopenAt.Sub(clock.now())

	clock.advance(2 * time.Second)
	if !b.allow() {
		t.Fatal("probe not admitted")
	}
	b.failure() // probe fails: reopen with backoff step 2
	if b.State() != BreakerOpen {
		t.Fatal("failed probe should reopen")
	}
	second := b.reopenAt.Sub(clock.now())
	if second <= first {
		t.Fatalf("cooldown did not grow: first %v, second %v", first, second)
	}
	want := []string{"closed->open", "open->half-open", "half-open->open"}
	if len(*trans) != len(want) {
		t.Fatalf("transitions = %v, want %v", *trans, want)
	}
	for i := range want {
		if (*trans)[i] != want[i] {
			t.Fatalf("transition %d = %s, want %s", i, (*trans)[i], want[i])
		}
	}
}

func TestBreakerStatePromotesOpenToHalfOpen(t *testing.T) {
	b, clock, _ := testBreaker(1, time.Second)
	b.allow()
	b.failure()
	clock.advance(5 * time.Second)
	// State() alone (no traffic) must surface the half-open promotion.
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("State() = %s, want half-open after cooldown", got)
	}
}
