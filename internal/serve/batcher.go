package serve

import (
	"context"
	"sync"
	"time"

	"mega/internal/datasets"
	"mega/internal/models"
)

// pending is one enqueued request travelling through the micro-batcher.
type pending struct {
	// ctx carries the request deadline/cancellation from the caller
	// through the queue to the worker, which drops expired requests
	// before they burn a forward pass.
	ctx      context.Context
	inst     datasets.Instance
	prep     *models.PreparedRep // MEGA engine only; nil under DGL or degraded
	cacheHit bool
	// degraded marks a request served by the fallback engine because MEGA
	// preprocessing failed or the circuit breaker is open.
	degraded bool
	enqueued time.Time
	done     chan outcome // buffered(1); finish sends exactly once
	once     sync.Once
}

// finish resolves the request exactly once; later calls are dropped. Both
// the normal completion path and crash/shutdown sweeps go through here, so
// double-answering (e.g. a worker recovering after partially answering a
// batch) cannot deadlock or misroute outcomes.
func (p *pending) finish(o outcome) {
	p.once.Do(func() { p.done <- o })
}

// outcome is the worker's reply to one pending request.
type outcome struct {
	pred Prediction
	err  error
}

// batcher accumulates requests into batches of at most maxBatch, flushing
// early after maxWait so a lone request is never stranded waiting for
// company — the standard inference micro-batching trade: batch to amortise
// the forward pass, bound the wait to keep tail latency sane.
type batcher struct {
	in       chan *pending
	out      chan []*pending
	maxBatch int
	maxWait  time.Duration
	clock    Clock
}

func newBatcher(maxBatch int, maxWait time.Duration, queueDepth int, clock Clock) *batcher {
	if clock == nil {
		clock = wallClock{}
	}
	return &batcher{
		in:       make(chan *pending, queueDepth),
		out:      make(chan []*pending),
		maxBatch: maxBatch,
		maxWait:  maxWait,
		clock:    clock,
	}
}

// run is the dispatcher loop: it owns the open batch and its deadline
// timer. It exits — closing out, which releases the worker pool — when in
// is closed and drained.
func (b *batcher) run() {
	defer close(b.out)
	var batch []*pending
	timer := b.clock.NewTimer(0)
	if !timer.Stop() {
		<-timer.C()
	}
	flush := func() {
		if len(batch) > 0 {
			b.out <- batch
			batch = nil
		}
	}
	for {
		if len(batch) == 0 {
			// Idle: block for the batch opener.
			p, ok := <-b.in
			if !ok {
				return
			}
			batch = append(batch, p)
			if len(batch) >= b.maxBatch {
				flush()
				continue
			}
			timer.Reset(b.maxWait)
		}
		select {
		case p, ok := <-b.in:
			if !ok {
				if !timer.Stop() {
					<-timer.C()
				}
				flush()
				return
			}
			batch = append(batch, p)
			if len(batch) >= b.maxBatch {
				if !timer.Stop() {
					<-timer.C()
				}
				flush()
			}
		case <-timer.C():
			flush()
		}
	}
}
