package serve

import (
	"time"

	"mega/internal/datasets"
	"mega/internal/models"
)

// pending is one enqueued request travelling through the micro-batcher.
type pending struct {
	inst     datasets.Instance
	prep     *models.PreparedRep // MEGA engine only; nil under DGL
	cacheHit bool
	enqueued time.Time
	done     chan outcome // buffered(1); exactly one send per request
}

// outcome is the worker's reply to one pending request.
type outcome struct {
	pred Prediction
	err  error
}

// batcher accumulates requests into batches of at most maxBatch, flushing
// early after maxWait so a lone request is never stranded waiting for
// company — the standard inference micro-batching trade: batch to amortise
// the forward pass, bound the wait to keep tail latency sane.
type batcher struct {
	in       chan *pending
	out      chan []*pending
	maxBatch int
	maxWait  time.Duration
}

func newBatcher(maxBatch int, maxWait time.Duration, queueDepth int) *batcher {
	return &batcher{
		in:       make(chan *pending, queueDepth),
		out:      make(chan []*pending),
		maxBatch: maxBatch,
		maxWait:  maxWait,
	}
}

// run is the dispatcher loop: it owns the open batch and its deadline
// timer. It exits — closing out, which releases the worker pool — when in
// is closed and drained.
func (b *batcher) run() {
	defer close(b.out)
	var batch []*pending
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	flush := func() {
		if len(batch) > 0 {
			b.out <- batch
			batch = nil
		}
	}
	for {
		if len(batch) == 0 {
			// Idle: block for the batch opener.
			p, ok := <-b.in
			if !ok {
				return
			}
			batch = append(batch, p)
			if len(batch) >= b.maxBatch {
				flush()
				continue
			}
			timer.Reset(b.maxWait)
		}
		select {
		case p, ok := <-b.in:
			if !ok {
				if !timer.Stop() {
					<-timer.C
				}
				flush()
				return
			}
			batch = append(batch, p)
			if len(batch) >= b.maxBatch {
				if !timer.Stop() {
					<-timer.C
				}
				flush()
			}
		case <-timer.C:
			flush()
		}
	}
}
