package serve

import (
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mega/internal/models"
	"mega/internal/train"
)

func TestOptionsPrecisionValidate(t *testing.T) {
	for _, ok := range []string{"", PrecisionF64, PrecisionF32} {
		if err := (Options{Precision: ok}).Validate(); err != nil {
			t.Errorf("Precision %q rejected: %v", ok, err)
		}
	}
	for _, bad := range []string{"f16", "double", "F32", "fp32"} {
		err := (Options{Precision: bad}).Validate()
		if !errors.Is(err, ErrBadOptions) {
			t.Errorf("Precision %q: err = %v, want ErrBadOptions", bad, err)
		}
	}
}

func TestPrecisionDefaultsToF64(t *testing.T) {
	s, _, _ := trainedServer(t, Options{MaxBatch: 1})
	if got := s.EffectiveOptions().Precision; got != PrecisionF64 {
		t.Fatalf("default precision %q, want %q", got, PrecisionF64)
	}
	if got := s.MetricsSnapshot(false).Precision; got != PrecisionF64 {
		t.Fatalf("metrics precision %q, want %q", got, PrecisionF64)
	}
}

func TestPrecisionRejectsUnsupportedModel(t *testing.T) {
	cfg := models.Config{Dim: 16, Layers: 1, Heads: 2, NodeTypes: 8, EdgeTypes: 4, OutDim: 1, Seed: 1}
	m := models.NewGatedGCN(cfg)
	_, err := New(m, train.Checkpoint{Model: "GCN", Config: cfg}, Options{Precision: PrecisionF32})
	if !errors.Is(err, ErrBadOptions) {
		t.Fatalf("GCN + f32: err = %v, want ErrBadOptions", err)
	}
}

// TestPrecisionF32EndToEnd is the checkpoint→serve acceptance path for the
// fast path: train, checkpoint to a directory, serve it back with
// Precision f32 (NewFromCheckpointDir — the downcast happens at load), and
// compare every prediction against a float64 server over the same
// checkpoint within the divergence envelope.
func TestPrecisionF32EndToEnd(t *testing.T) {
	s64, ds, _ := trainedServer(t, Options{MaxBatch: 4})

	dir := t.TempDir()
	path := train.CheckpointPath(dir, 1)
	if err := train.SaveCheckpointFile(path, s64.Meta(), s64.model); err != nil {
		t.Fatal(err)
	}
	s32, err := NewFromCheckpointDir(dir, Options{MaxBatch: 4, Precision: PrecisionF32})
	if err != nil {
		t.Fatal(err)
	}
	defer s32.Close()

	for i, inst := range ds.Val {
		p64, err := s64.Predict(inst)
		if err != nil {
			t.Fatal(err)
		}
		p32, err := s32.Predict(inst)
		if err != nil {
			t.Fatal(err)
		}
		if p64.Precision != "" {
			t.Fatalf("f64 prediction carries precision %q", p64.Precision)
		}
		if p32.Precision != PrecisionF32 {
			t.Fatalf("f32 prediction precision %q, want %q", p32.Precision, PrecisionF32)
		}
		if len(p32.Output) != len(p64.Output) {
			t.Fatalf("output widths %d/%d", len(p32.Output), len(p64.Output))
		}
		for j := range p64.Output {
			diff := math.Abs(p32.Output[j] - p64.Output[j])
			den := math.Max(math.Abs(p64.Output[j]), 1e-2)
			if diff/den > 5e-3 {
				t.Errorf("val[%d] output[%d]: f32 %v vs f64 %v (rel %.3g)",
					i, j, p32.Output[j], p64.Output[j], diff/den)
			}
		}
	}

	// The f32 path must show up in the arena occupancy counters.
	snap := s32.MetricsSnapshot(false)
	if snap.Precision != PrecisionF32 {
		t.Errorf("metrics precision %q", snap.Precision)
	}
	if snap.Arena.F32.Borrows == 0 || snap.Arena.F32.PeakBytes == 0 {
		t.Errorf("f32 serving left no arena footprint: %+v", snap.Arena.F32)
	}
	if snap.Arena.F32.InUseBytes != 0 {
		t.Errorf("f32 arena bytes still checked out after serving: %+v", snap.Arena.F32)
	}
}

// TestPrecisionF32Deterministic pins request-order independence: the same
// instance predicted twice through the f32 path answers bit-identically
// (frozen weights, deterministic kernels, batch of one).
func TestPrecisionF32Deterministic(t *testing.T) {
	s64, ds, model := trainedServer(t, Options{MaxBatch: 1})
	s, err := New(model, s64.Meta(), Options{MaxBatch: 1, Precision: PrecisionF32})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	inst := ds.Val[0]
	a, err := s.Predict(inst)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Predict(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !b.CacheHit {
		t.Error("second predict should hit the representation cache")
	}
	for j := range a.Output {
		if a.Output[j] != b.Output[j] {
			t.Fatalf("repeat predict differs at %d: %v vs %v", j, a.Output[j], b.Output[j])
		}
	}
}

// TestPrecisionF32WithUpdate composes the fast path with the mutation
// subsystem: /update publishes a repaired representation, and the f32
// forward serves the mutated graph from it.
func TestPrecisionF32WithUpdate(t *testing.T) {
	s64, ds, model := trainedServer(t, Options{MaxBatch: 1})
	s, err := New(model, s64.Meta(), Options{MaxBatch: 1, Precision: PrecisionF32})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	inst := ds.Val[0]
	g := inst.G
	base := make([][2]int32, g.NumEdges())
	for i := range base {
		e := g.EdgeAt(i)
		base[i] = [2]int32{e.Src, e.Dst}
	}
	removes, adds := pickMutations(t, g, 1, 1)
	var up UpdateResponse
	code, raw := postJSON(t, ts.URL+"/update", UpdateRequest{
		Base:   &GraphRequest{NumNodes: g.NumNodes(), Edges: base},
		Remove: removes,
		Add:    adds,
	}, &up)
	if code != http.StatusOK {
		t.Fatalf("/update = %d: %s", code, raw)
	}
	var pred Prediction
	code, raw = postJSON(t, ts.URL+"/predict", GraphRequest{
		NumNodes: g.NumNodes(), Edges: mutatedEdges(t, base, removes, adds), NodeFeats: inst.NodeFeat,
	}, &pred)
	if code != http.StatusOK {
		t.Fatalf("/predict = %d: %s", code, raw)
	}
	if !pred.CacheHit {
		t.Error("post-update predict should hit the published representation")
	}
	if pred.Precision != PrecisionF32 {
		t.Errorf("post-update precision %q, want %q", pred.Precision, PrecisionF32)
	}

	// /metrics must expose the arena block for dashboards.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw2, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw2)
	for _, want := range []string{`"arena"`, `"bucket_hits"`, `"precision": "f32"`} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestPrecisionF32DegradedFallsBackToF64 pins the degraded contract:
// answers served by the fallback engine run float64 even on an f32 server.
func TestPrecisionF32DegradedFallsBackToF64(t *testing.T) {
	s64, ds, model := trainedServer(t, Options{MaxBatch: 1})
	s, err := New(model, s64.Meta(), Options{MaxBatch: 1, Precision: PrecisionF32})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	inst := ds.Val[1]
	// Degraded requests route through runGroup(…, EngineDGL); the forward
	// there must not take the f32 path.
	preds, err := s.forward([]*pending{{inst: inst, degraded: true, ctx: nil}}, models.EngineDGL)
	if err != nil {
		t.Fatal(err)
	}
	if preds[0].Precision != "" {
		t.Fatalf("degraded answer precision %q, want f64 (empty)", preds[0].Precision)
	}
	want := directForward(t, model, models.EngineDGL, inst, s.meta.Config.Dim)
	for j := range want {
		if math.Abs(preds[0].Output[j]-want[j]) > 1e-12 {
			t.Fatalf("degraded output[%d] = %v, want exact f64 %v", j, preds[0].Output[j], want[j])
		}
	}
}
