// Package serve is the inference service over trained MEGA models: an LRU
// cache of path representations keyed by canonical graph fingerprint, a
// micro-batching queue that packs concurrent requests into block-diagonal
// forward passes, per-stage latency metrics, and an HTTP/JSON front end.
//
// The cache is the serving-side payoff of the paper's core design: MEGA's
// traversal + band construction is a CPU preprocessing pass that is
// decoupled from the neural computation (§I), so its output — a pure
// function of graph topology and traverse options — can be computed once
// and amortised across every request that ships the same graph bytes.
package serve

import (
	"container/list"
	"sync"

	"mega/internal/graph"
	"mega/internal/models"
	"mega/internal/traverse"
)

// RepKey identifies one prepared path representation: the canonical
// topology fingerprint plus a digest of the traverse/sparsify options the
// rep was built under. The options digest is load-bearing — a rep is a
// pure function of (topology, options), so keying by topology alone (the
// original design) would silently serve a rep built under different
// preprocessing options whenever two configurations ever met the same
// graph bytes.
type RepKey struct {
	Topo graph.Fingerprint
	Opts traverse.OptionsDigest
}

// RepCache is a thread-safe LRU mapping (topology fingerprint, options
// digest) keys to prepared path representations. A zero or negative
// capacity disables caching (every Get misses, Put is a no-op).
type RepCache struct {
	mu        sync.Mutex
	capacity  int
	order     *list.List // front = most recently used
	items     map[RepKey]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key  RepKey
	prep *models.PreparedRep
}

// NewRepCache creates a cache bounded to capacity entries.
func NewRepCache(capacity int) *RepCache {
	return &RepCache{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[RepKey]*list.Element),
	}
}

// Get returns the cached representation for key, marking it most recently
// used. The returned PreparedRep is shared; callers must treat it as
// immutable.
func (c *RepCache) Get(key RepKey) (*models.PreparedRep, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).prep, true
}

// Put inserts or refreshes key, evicting the least recently used entry
// when the cache is full.
func (c *RepCache) Put(key RepKey, prep *models.PreparedRep) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).prep = prep
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, prep: prep})
}

// Len returns the number of cached entries.
func (c *RepCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Size      int    `json:"size"`
	Capacity  int    `json:"capacity"`
}

// Stats snapshots the hit/miss/eviction counters.
func (c *RepCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Size:      c.order.Len(),
		Capacity:  c.capacity,
	}
}
