package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mega/internal/datasets"
	"mega/internal/models"
	"mega/internal/train"
)

// trainedServer trains a tiny GT on ZINC, round-trips it through a
// checkpoint file, and serves the loaded model — the full
// megatrain → megaserve pipeline in-process. GT is used because its
// LayerNorm is per-row: predictions are independent of batch composition,
// which is the property the batched-equals-single assertions need
// (GatedGCN's BatchNorm is batch-dependent by construction).
func trainedServer(t *testing.T, opts Options) (*Server, *datasets.Dataset, models.Model) {
	t.Helper()
	ds := datasets.ZINC(datasets.Config{TrainSize: 16, ValSize: 12, TestSize: 1, Seed: 11})
	res, err := train.Run(ds, train.Options{
		Model: "GT", Engine: models.EngineMega,
		Dim: 16, Layers: 1, Heads: 2, BatchSize: 8, Epochs: 1, Seed: 11,
	})
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	path := filepath.Join(t.TempDir(), "gt.ckpt")
	if err := train.SaveCheckpointFile(path, res.Checkpoint(ds.Name), res.Model); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	s, err := NewFromCheckpointFile(path, opts)
	if err != nil {
		t.Fatalf("serve from checkpoint: %v", err)
	}
	t.Cleanup(s.Close)
	return s, ds, res.Model
}

// directForward runs one instance through the model outside the service.
func directForward(t *testing.T, model models.Model, engine models.EngineKind, inst datasets.Instance, dim int) []float64 {
	t.Helper()
	var ctx *models.Context
	var err error
	if engine == models.EngineMega {
		ctx, err = models.NewMegaContext([]datasets.Instance{inst}, models.MegaOptions{}, nil, dim)
	} else {
		ctx, err = models.NewDGLContext([]datasets.Instance{inst}, nil, dim)
	}
	if err != nil {
		t.Fatalf("direct context: %v", err)
	}
	out := model.Forward(ctx)
	row := make([]float64, out.Cols())
	copy(row, out.Data[:out.Cols()])
	return row
}

func TestServedPredictionMatchesDirectForward(t *testing.T) {
	s, ds, model := trainedServer(t, Options{MaxBatch: 1})
	inst := ds.Val[0]
	pred, err := s.Predict(inst)
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	want := directForward(t, model, models.EngineMega, inst, s.Meta().Config.Dim)
	if len(pred.Output) != len(want) {
		t.Fatalf("output width %d, want %d", len(pred.Output), len(want))
	}
	for i := range want {
		if math.Abs(pred.Output[i]-want[i]) > 1e-12 {
			t.Fatalf("served output[%d] = %v, direct = %v", i, pred.Output[i], want[i])
		}
	}
	if pred.Label != nil {
		t.Error("regression prediction should not carry a label")
	}
}

func TestRepeatedRequestHitsCache(t *testing.T) {
	s, ds, _ := trainedServer(t, Options{MaxBatch: 1})
	inst := ds.Val[1]
	first, err := s.Predict(inst)
	if err != nil {
		t.Fatalf("first predict: %v", err)
	}
	if first.CacheHit {
		t.Error("first request cannot be a cache hit")
	}
	second, err := s.Predict(inst)
	if err != nil {
		t.Fatalf("second predict: %v", err)
	}
	if !second.CacheHit {
		t.Error("identical second request should hit the path cache")
	}
	for i := range first.Output {
		if first.Output[i] != second.Output[i] {
			t.Fatalf("cache hit changed the prediction: %v vs %v", first.Output, second.Output)
		}
	}
	st := s.CacheStats()
	if st.Hits < 1 || st.Misses < 1 {
		t.Errorf("cache stats = %+v, want >=1 hit and >=1 miss", st)
	}
}

func TestBatchedPredictionsMatchSingle(t *testing.T) {
	// Generous MaxWait so the concurrent burst coalesces into batches;
	// correctness must hold for any batch composition regardless.
	s, ds, model := trainedServer(t, Options{MaxBatch: 8, MaxWait: 300 * time.Millisecond, Workers: 2})
	insts := ds.Val[:8]
	got := make([][]float64, len(insts))
	errs := make([]error, len(insts))
	var wg sync.WaitGroup
	for i := range insts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pred, err := s.Predict(insts[i])
			got[i], errs[i] = pred.Output, err
		}(i)
	}
	wg.Wait()
	for i := range insts {
		if errs[i] != nil {
			t.Fatalf("predict %d: %v", i, errs[i])
		}
		want := directForward(t, model, models.EngineMega, insts[i], s.Meta().Config.Dim)
		for j := range want {
			if math.Abs(got[i][j]-want[j]) > 1e-9 {
				t.Errorf("batched output[%d][%d] = %v, single = %v", i, j, got[i][j], want[j])
			}
		}
	}
	snap := s.MetricsSnapshot(false)
	if snap.Requests < 8 || snap.Batches == 0 {
		t.Errorf("metrics: %d requests over %d batches", snap.Requests, snap.Batches)
	}
}

func TestDGLEngineServing(t *testing.T) {
	s, ds, model := trainedServer(t, Options{Engine: models.EngineDGL, MaxBatch: 1})
	inst := ds.Val[2]
	pred, err := s.Predict(inst)
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	want := directForward(t, model, models.EngineDGL, inst, s.Meta().Config.Dim)
	for i := range want {
		if math.Abs(pred.Output[i]-want[i]) > 1e-12 {
			t.Fatalf("dgl served output[%d] = %v, direct = %v", i, pred.Output[i], want[i])
		}
	}
	if st := s.CacheStats(); st.Hits != 0 || st.Misses != 0 {
		t.Errorf("dgl engine should not touch the path cache: %+v", st)
	}
}

func TestClassificationLabel(t *testing.T) {
	cfg := models.Config{Dim: 16, Layers: 1, Heads: 2, NodeTypes: 4, EdgeTypes: 1, OutDim: 2, Seed: 5}
	model, err := train.NewModel("GT", cfg)
	if err != nil {
		t.Fatal(err)
	}
	meta := train.Checkpoint{Model: "GT", Config: cfg, Task: datasets.TaskClassification, Dataset: "CYCLES"}
	s, err := New(model, meta, Options{MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ds := datasets.CYCLES(datasets.Config{TrainSize: 1, ValSize: 2, TestSize: 1, Seed: 5})
	pred, err := s.Predict(ds.Val[0])
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	if pred.Label == nil {
		t.Fatal("classification prediction should carry an argmax label")
	}
	best := 0
	for j := range pred.Output {
		if pred.Output[j] > pred.Output[best] {
			best = j
		}
	}
	if *pred.Label != best {
		t.Errorf("label = %d, argmax = %d", *pred.Label, best)
	}
}

func TestValidationRejectsBadInstances(t *testing.T) {
	s, ds, _ := trainedServer(t, Options{MaxBatch: 1})
	good := ds.Val[3]

	badNode := good
	badNode.NodeFeat = append([]int32(nil), good.NodeFeat...)
	badNode.NodeFeat[0] = int32(s.Meta().Config.NodeTypes) // out of vocabulary
	if _, err := s.Predict(badNode); !errors.Is(err, ErrInvalidInstance) {
		t.Errorf("out-of-vocab node: err = %v", err)
	}

	badLen := good
	badLen.EdgeFeat = good.EdgeFeat[:1]
	if _, err := s.Predict(badLen); !errors.Is(err, ErrInvalidInstance) {
		t.Errorf("edge feature length: err = %v", err)
	}

	if _, err := s.Predict(datasets.Instance{}); !errors.Is(err, ErrInvalidInstance) {
		t.Errorf("empty instance: err = %v", err)
	}
}

func TestPredictAfterClose(t *testing.T) {
	s, ds, _ := trainedServer(t, Options{MaxBatch: 1})
	s.Close()
	s.Close() // idempotent
	if _, err := s.Predict(ds.Val[0]); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

// TestHTTPEndToEnd drives the HTTP surface: predict twice (second is a
// cache hit), then confirm /metrics reports it — the acceptance demo as a
// test.
func TestHTTPEndToEnd(t *testing.T) {
	s, ds, model := trainedServer(t, Options{MaxBatch: 4, MaxWait: 5 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	inst := ds.Val[4]
	reqBody := GraphRequest{NumNodes: inst.G.NumNodes(), NodeFeats: inst.NodeFeat, EdgeFeats: inst.EdgeFeat}
	for _, e := range inst.G.Edges() {
		reqBody.Edges = append(reqBody.Edges, [2]int32{e.Src, e.Dst})
	}
	body, _ := json.Marshal(reqBody)

	post := func() Prediction {
		t.Helper()
		resp, err := http.Post(ts.URL+"/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST /predict: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		var pred Prediction
		if err := json.NewDecoder(resp.Body).Decode(&pred); err != nil {
			t.Fatalf("decode: %v", err)
		}
		return pred
	}

	first := post()
	second := post()
	if first.CacheHit {
		t.Error("first HTTP request should miss the cache")
	}
	if !second.CacheHit {
		t.Error("second identical HTTP request should hit the cache")
	}
	want := directForward(t, model, models.EngineMega, inst, s.Meta().Config.Dim)
	for i := range want {
		if math.Abs(second.Output[i]-want[i]) > 1e-9 {
			t.Errorf("HTTP output[%d] = %v, direct = %v", i, second.Output[i], want[i])
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	if snap.Cache.Hits < 1 {
		t.Errorf("metrics cache hits = %d, want >= 1", snap.Cache.Hits)
	}
	if snap.Requests < 2 || snap.TotalLatency.Count < 2 {
		t.Errorf("metrics undercounted: %+v", snap)
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil || hz.StatusCode != http.StatusOK {
		t.Errorf("healthz: %v %v", err, hz.StatusCode)
	}
	hz.Body.Close()
}

func TestHTTPRejectsBadRequests(t *testing.T) {
	s, _, _ := trainedServer(t, Options{MaxBatch: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed json", "{nope", http.StatusBadRequest},
		{"edge out of range", `{"num_nodes":2,"edges":[[0,5]]}`, http.StatusBadRequest},
		{"empty graph", `{"num_nodes":0,"edges":[]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/predict", "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	resp, err := http.Get(ts.URL + "/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /predict status = %d, want 405", resp.StatusCode)
	}
}

// TestConcurrentServingSharedArena hammers the service from many client
// goroutines so several workers run fused-attention forwards against the
// shared scratch arena at once. Predictions must stay bit-identical to a
// direct forward regardless of which pooled buffers each batch drew —
// and, under -race, the pool itself must be data-race-free.
func TestConcurrentServingSharedArena(t *testing.T) {
	s, ds, model := trainedServer(t, Options{MaxBatch: 1, Workers: 4})
	dim := s.Meta().Config.Dim
	want := make([][]float64, len(ds.Val))
	for i, inst := range ds.Val {
		want[i] = directForward(t, model, models.EngineMega, inst, dim)
	}
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				for i, inst := range ds.Val {
					pred, err := s.Predict(inst)
					if err != nil {
						t.Errorf("client %d predict %d: %v", c, i, err)
						return
					}
					for j := range want[i] {
						if pred.Output[j] != want[i][j] {
							t.Errorf("client %d inst %d: output[%d] = %v, want %v",
								c, i, j, pred.Output[j], want[i][j])
							return
						}
					}
				}
			}
		}(c)
	}
	wg.Wait()
	if s.arena.Buffered() == 0 {
		t.Error("serve workers never returned scratch to the shared arena")
	}
}
