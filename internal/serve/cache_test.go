package serve

import (
	"reflect"
	"sync"
	"testing"

	"mega/internal/graph"
	"mega/internal/models"
	"mega/internal/traverse"
)

func fp(seed int64) RepKey {
	g := graph.MustNew(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: graph.NodeID(2)}}, false)
	f := g.Fingerprint()
	f[0] = byte(seed) // distinct synthetic keys for structural tests
	return RepKey{Topo: f, Opts: traverse.Options{}.Digest()}
}

func TestRepCacheEvictionOrder(t *testing.T) {
	c := NewRepCache(2)
	a, b, d := fp(1), fp(2), fp(3)
	pa, pb, pd := &models.PreparedRep{}, &models.PreparedRep{}, &models.PreparedRep{}
	c.Put(a, pa)
	c.Put(b, pb)
	// Touch a so b becomes least recently used.
	if _, ok := c.Get(a); !ok {
		t.Fatal("a should be cached")
	}
	c.Put(d, pd) // evicts b
	if _, ok := c.Get(b); ok {
		t.Error("b should have been evicted (LRU)")
	}
	if got, ok := c.Get(a); !ok || got != pa {
		t.Error("a should have survived eviction")
	}
	if got, ok := c.Get(d); !ok || got != pd {
		t.Error("d should be cached")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Size != 2 || st.Capacity != 2 {
		t.Errorf("stats = %+v, want 1 eviction, size 2, capacity 2", st)
	}
}

func TestRepCacheRefreshDoesNotEvict(t *testing.T) {
	c := NewRepCache(2)
	a, b := fp(1), fp(2)
	c.Put(a, &models.PreparedRep{})
	c.Put(b, &models.PreparedRep{})
	fresh := &models.PreparedRep{}
	c.Put(a, fresh) // refresh, no eviction
	if st := c.Stats(); st.Evictions != 0 || st.Size != 2 {
		t.Errorf("refresh evicted: %+v", st)
	}
	if got, _ := c.Get(a); got != fresh {
		t.Error("refresh should replace the stored value")
	}
}

func TestRepCacheDisabled(t *testing.T) {
	c := NewRepCache(0)
	c.Put(fp(1), &models.PreparedRep{})
	if _, ok := c.Get(fp(1)); ok {
		t.Error("zero-capacity cache should never hit")
	}
	if c.Len() != 0 {
		t.Error("zero-capacity cache should stay empty")
	}
}

func TestRepCacheCounters(t *testing.T) {
	c := NewRepCache(4)
	k := fp(9)
	c.Get(k)
	c.Put(k, &models.PreparedRep{})
	c.Get(k)
	c.Get(k)
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("hits=%d misses=%d, want 2/1", st.Hits, st.Misses)
	}
}

// TestRepCacheConcurrent hammers Get/Put from many goroutines; run under
// -race this is the data-race check the worker pool depends on.
func TestRepCacheConcurrent(t *testing.T) {
	c := NewRepCache(8)
	keys := make([]RepKey, 16)
	for i := range keys {
		keys[i] = fp(int64(i))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := keys[(i+w)%len(keys)]
				if _, ok := c.Get(k); !ok {
					c.Put(k, &models.PreparedRep{})
				}
				if i%17 == 0 {
					c.Stats()
					c.Len()
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Errorf("cache grew past capacity: %d", c.Len())
	}
	st := c.Stats()
	if st.Hits+st.Misses != 8*500 {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, 8*500)
	}
}

// TestRepCacheHitMatchesFreshReorganize checks the load-bearing cache
// property: a hit returns a representation identical to what a fresh
// Reorganize (band.FromGraph) of the same bytes would produce.
func TestRepCacheHitMatchesFreshReorganize(t *testing.T) {
	g := graph.MustNew(8, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 4},
		{Src: 4, Dst: 5}, {Src: 5, Dst: 6}, {Src: 6, Dst: 7}, {Src: 7, Dst: 0},
		{Src: 0, Dst: 4}, {Src: 2, Dst: 6},
	}, false)

	var opts models.MegaOptions
	cached, err := models.PrepareMega(g, opts)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	c := NewRepCache(4)
	optsDigest := opts.TraverseOptions().Digest()
	c.Put(RepKey{Topo: g.Fingerprint(), Opts: optsDigest}, cached)

	// A byte-identical graph (rebuilt from scratch) must hit and match a
	// fresh traversal exactly.
	g2 := g.Clone()
	got, ok := c.Get(RepKey{Topo: g2.Fingerprint(), Opts: optsDigest})
	if !ok {
		t.Fatal("byte-identical graph should hit the cache")
	}
	fresh, err := models.PrepareMega(g2, opts)
	if err != nil {
		t.Fatalf("fresh prepare: %v", err)
	}
	if !reflect.DeepEqual(got.Rep, fresh.Rep) {
		t.Error("cached band rep differs from a fresh Reorganize")
	}
	if !reflect.DeepEqual(got.Res.Path, fresh.Res.Path) {
		t.Error("cached traversal path differs from a fresh Reorganize")
	}
}
