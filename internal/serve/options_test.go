package serve

import (
	"errors"
	"testing"
	"time"

	"mega/internal/datasets"
	"mega/internal/models"
	"mega/internal/train"
)

// TestOptionsValidate is the regression net over the silent-fallback paths
// PR 5 documented: a negative MaxWait used to be silently replaced by the
// 2ms default, and a ShardWorkers value that cannot divide the 8 path
// µchunks used to serve unsharded with only a fallback counter. Both are
// now rejected at construction with ErrBadOptions.
func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		ok   bool
	}{
		{"zero value", Options{}, true},
		{"zero MaxWait selects default", Options{MaxWait: 0}, true},
		{"positive MaxWait", Options{MaxWait: 5 * time.Millisecond}, true},
		{"negative MaxWait", Options{MaxWait: -time.Millisecond}, false},
		{"shard disabled", Options{ShardWorkers: 0}, true},
		{"shard single", Options{ShardWorkers: 1}, true},
		{"shard 2", Options{ShardWorkers: 2}, true},
		{"shard 4", Options{ShardWorkers: 4}, true},
		{"shard 8", Options{ShardWorkers: 8}, true},
		{"shard 3", Options{ShardWorkers: 3}, false},
		{"shard 5", Options{ShardWorkers: 5}, false},
		{"shard 6", Options{ShardWorkers: 6}, false},
		{"shard 7", Options{ShardWorkers: 7}, false},
		{"shard 16", Options{ShardWorkers: 16}, false},
		{"shard negative", Options{ShardWorkers: -2}, false},
		{"both invalid", Options{MaxWait: -1, ShardWorkers: 3}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opts.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatal("Validate() = nil, want ErrBadOptions")
				}
				if !errors.Is(err, ErrBadOptions) {
					t.Fatalf("Validate() = %v, want ErrBadOptions", err)
				}
			}
		})
	}
}

// TestNewRejectsBadOptions pins that the constructor refuses to start —
// no dispatcher, no workers, no silently different knobs — when handed
// options Validate rejects.
func TestNewRejectsBadOptions(t *testing.T) {
	cfg := models.Config{Dim: 16, Layers: 1, Heads: 2, NodeTypes: 4, EdgeTypes: 1, OutDim: 1, Seed: 3}
	model, err := train.NewModel("GT", cfg)
	if err != nil {
		t.Fatal(err)
	}
	meta := train.Checkpoint{Model: "GT", Config: cfg, Task: datasets.TaskRegression, Dataset: "ZINC"}

	for _, opts := range []Options{
		{MaxWait: -time.Second},
		{ShardWorkers: 3},
		{ShardWorkers: 5},
	} {
		s, err := New(model, meta, opts)
		if !errors.Is(err, ErrBadOptions) {
			t.Fatalf("New(%+v) err = %v, want ErrBadOptions", opts, err)
		}
		if s != nil {
			s.Close()
			t.Fatalf("New(%+v) returned a live server alongside the error", opts)
		}
	}

	// The valid shard worker counts still construct (and still default the
	// vertex threshold).
	s, err := New(model, meta, Options{ShardWorkers: 4})
	if err != nil {
		t.Fatalf("New(ShardWorkers=4) = %v, want ok", err)
	}
	defer s.Close()
	if got := s.EffectiveOptions().ShardVertexThreshold; got != 256 {
		t.Fatalf("effective ShardVertexThreshold = %d, want defaulted 256", got)
	}
}
