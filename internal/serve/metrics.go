package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"mega/internal/dist"
	"mega/internal/models"
	"mega/internal/tensor"
)

// latencyBounds are the histogram bucket upper bounds, exponential from
// 50µs to 5s — wide enough to cover a cache-hit fast path and a cold
// traversal of a large graph in one scale.
var latencyBounds = []time.Duration{
	50 * time.Microsecond, 100 * time.Microsecond, 250 * time.Microsecond,
	500 * time.Microsecond, time.Millisecond, 2500 * time.Microsecond,
	5 * time.Millisecond, 10 * time.Millisecond, 25 * time.Millisecond,
	50 * time.Millisecond, 100 * time.Millisecond, 250 * time.Millisecond,
	500 * time.Millisecond, time.Second, 2500 * time.Millisecond, 5 * time.Second,
}

// numBuckets counts the explicit bounds plus the final +Inf bucket.
const numBuckets = 17

// histogram is a fixed-bucket latency histogram; the final implicit bucket
// is +Inf.
type histogram struct {
	mu     sync.Mutex
	counts [numBuckets]uint64
	count  uint64
	sum    time.Duration
	max    time.Duration
}

// observe records one duration.
func (h *histogram) observe(d time.Duration) {
	i := 0
	for i < len(latencyBounds) && d > latencyBounds[i] {
		i++
	}
	h.mu.Lock()
	h.counts[i]++
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

// Bucket is one histogram bar: the count of observations at most Le.
// The final bucket is unbounded; it serializes with "le_ms": "+Inf"
// rather than a numeric sentinel a consumer could mistake for 0 ms.
type Bucket struct {
	LeMs  float64 `json:"le_ms"` // upper bound in ms; unused when Inf is set
	Inf   bool    `json:"-"`
	Count uint64  `json:"count"`
}

// MarshalJSON emits the overflow bucket's bound as the string "+Inf"
// (JSON has no infinity literal) and every bounded bucket as a number.
func (b Bucket) MarshalJSON() ([]byte, error) {
	if b.Inf {
		return json.Marshal(struct {
			LeMs  string `json:"le_ms"`
			Count uint64 `json:"count"`
		}{LeMs: "+Inf", Count: b.Count})
	}
	type bounded Bucket // drop the method to avoid recursion
	return json.Marshal(bounded(b))
}

// UnmarshalJSON accepts both forms MarshalJSON produces — a numeric bound
// or the string "+Inf" — so a Snapshot round-trips through JSON (clients
// of /metrics decode into the same types the server encodes from).
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var raw struct {
		LeMs  json.RawMessage `json:"le_ms"`
		Count uint64          `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	*b = Bucket{Count: raw.Count}
	if len(raw.LeMs) == 0 {
		return nil
	}
	if raw.LeMs[0] == '"' {
		var s string
		if err := json.Unmarshal(raw.LeMs, &s); err != nil {
			return err
		}
		if s != "+Inf" {
			return fmt.Errorf("serve: bucket bound %q (want a number or \"+Inf\")", s)
		}
		b.Inf = true
		return nil
	}
	return json.Unmarshal(raw.LeMs, &b.LeMs)
}

// HistogramStats is a JSON-friendly histogram snapshot with approximate
// quantiles (each quantile reports its bucket's upper bound).
type HistogramStats struct {
	Count   uint64   `json:"count"`
	MeanMs  float64  `json:"mean_ms"`
	MaxMs   float64  `json:"max_ms"`
	P50Ms   float64  `json:"p50_ms"`
	P90Ms   float64  `json:"p90_ms"`
	P99Ms   float64  `json:"p99_ms"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// snapshot freezes the histogram, optionally including per-bucket counts.
func (h *histogram) snapshot(withBuckets bool) HistogramStats {
	h.mu.Lock()
	counts := h.counts
	count, sum, max := h.count, h.sum, h.max
	h.mu.Unlock()

	s := HistogramStats{Count: count, MaxMs: ms(max)}
	if count == 0 {
		return s
	}
	s.MeanMs = ms(sum) / float64(count)
	quantile := func(q float64) float64 {
		// Ceiling rank: the q-quantile is the smallest observation with at
		// least ⌈q·n⌉ observations at or below it. Truncation would collapse
		// distinct quantiles at small counts (at n=10, p90 and p99 would both
		// resolve to rank 9) and systematically under-report the tail.
		target := uint64(math.Ceil(q * float64(count)))
		if target == 0 {
			target = 1
		}
		cum := uint64(0)
		for i, c := range counts {
			cum += c
			if cum >= target {
				if i < len(latencyBounds) {
					return ms(latencyBounds[i])
				}
				return ms(max) // +Inf bucket: report the observed max
			}
		}
		return ms(max)
	}
	s.P50Ms, s.P90Ms, s.P99Ms = quantile(0.50), quantile(0.90), quantile(0.99)
	if withBuckets {
		for i, c := range counts {
			b := Bucket{Count: c}
			if i < len(latencyBounds) {
				b.LeMs = ms(latencyBounds[i])
			} else {
				b.Inf = true
			}
			s.Buckets = append(s.Buckets, b)
		}
	}
	return s
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Metrics aggregates the service's counters and per-stage latency
// histograms: queue (enqueue to batch start), preprocess (traversal + band
// on cache miss), forward (context build + model pass per batch), and
// total (request arrival to response).
type Metrics struct {
	start time.Time

	requests atomic.Uint64
	errors   atomic.Uint64

	// The batch counters move together (MeanBatchSize divides batched by
	// batches; MaxBatchSize bounds it), so they update and snapshot under
	// one mutex — independent atomics let Snapshot observe batched from a
	// later batch than batches, reporting a mean above the true maximum.
	batchMu  sync.Mutex
	batches  uint64
	batched  uint64 // graphs summed over batches
	maxBatch uint64

	// Failure-domain counters (PR 4): each names one way a request can
	// deviate from the happy path, so load tests and the chaos harness can
	// assert that every deviation is accounted for.
	shed                 atomic.Uint64 // admission queue full → ErrOverloaded
	deadlineExceeded     atomic.Uint64 // caller deadline fired before the answer
	canceled             atomic.Uint64 // caller context canceled
	degraded             atomic.Uint64 // served by the fallback engine
	prepareFailures      atomic.Uint64 // MEGA preprocessing attempts that failed
	breakerTransitions   atomic.Uint64 // every breaker state change
	breakerOpens         atomic.Uint64 // transitions into open specifically
	workerRestarts       atomic.Uint64 // panicked workers replaced
	checkpointRecoveries atomic.Uint64 // corrupt checkpoints quarantined at load

	// Shard-engine counters (PR 5): traffic and per-worker time of batches
	// served by the shard-parallel engine. Messages and bytes use the same
	// logical granularity dist.AnalyzePathPartition predicts, so observed
	// serving traffic can be checked against the analytical model.
	shardedBatches atomic.Uint64 // batches forwarded by the shard engine
	shardFallbacks atomic.Uint64 // shard-eligible batches that fell back
	shardMessages  atomic.Uint64 // exchange messages across sharded batches
	shardBytes     atomic.Uint64 // exchange payload bytes across sharded batches
	shardMu        sync.Mutex
	shardWorkerNs  []int64 // cumulative forward wall time per shard worker
	// shardFallbackReasons breaks shardFallbacks down by cause (PR 9):
	// "unshardable" (path too short / window too wide), "f32_suppressed"
	// (float32 fast path takes precedence), "group_down" (distributed
	// fleet unavailable — the batch degraded to the fallback engine).
	shardFallbackMu      sync.Mutex
	shardFallbackReasons map[string]uint64

	// Mutation-subsystem counters (PR 7): POST /update traffic and how its
	// incremental repairs resolved. repairSplices vs repairRebuilds is the
	// serving-side view of the patch-vs-rebuild policy — a rebuild-heavy
	// mix means mutations keep landing early in the traversal (or the
	// WL-delta policy needs retuning), erasing the incremental win.
	updates          atomic.Uint64 // /update requests
	updateErrors     atomic.Uint64 // /update requests that failed
	mutationsApplied atomic.Uint64 // individual edge mutations committed
	repairSplices    atomic.Uint64 // mutations repaired by prefix splice
	repairRebuilds   atomic.Uint64 // mutations repaired by full rebuild
	sessionAdoptions atomic.Uint64 // sessions created from snapshot/base

	queue      histogram
	preprocess histogram
	forward    histogram
	total      histogram
	update     histogram // whole /update request, including session setup
	repair     histogram // ApplyBatch alone (replay + splice or rebuild)
}

// NewMetrics creates a metrics registry anchored at now.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now()}
}

func (m *Metrics) observeBatch(size int, forward time.Duration) {
	m.batchMu.Lock()
	m.batches++
	m.batched += uint64(size)
	if uint64(size) > m.maxBatch {
		m.maxBatch = uint64(size)
	}
	m.batchMu.Unlock()
	m.forward.observe(forward)
}

// shardFallback counts one shard-eligible batch that fell back, both in
// the total and under its reason — the per-reason breakdown surfaces the
// fallbacks that used to be silent.
func (m *Metrics) shardFallback(reason string) {
	m.shardFallbacks.Add(1)
	m.shardFallbackMu.Lock()
	if m.shardFallbackReasons == nil {
		m.shardFallbackReasons = make(map[string]uint64)
	}
	m.shardFallbackReasons[reason]++
	m.shardFallbackMu.Unlock()
}

// observeShard records one batch served by the shard-parallel engine.
func (m *Metrics) observeShard(st models.ShardStats) {
	m.shardedBatches.Add(1)
	m.shardMessages.Add(uint64(st.ForwardMessages()))
	m.shardBytes.Add(uint64(st.ForwardBytes()))
	m.shardMu.Lock()
	if len(m.shardWorkerNs) < len(st.ForwardNs) {
		grown := make([]int64, len(st.ForwardNs))
		copy(grown, m.shardWorkerNs)
		m.shardWorkerNs = grown
	}
	for i, ns := range st.ForwardNs {
		m.shardWorkerNs[i] += ns
	}
	m.shardMu.Unlock()
}

// Snapshot is the full JSON document served on /metrics.
type Snapshot struct {
	UptimeSec     float64 `json:"uptime_sec"`
	Requests      uint64  `json:"requests"`
	Errors        uint64  `json:"errors"`
	ThroughputRPS float64 `json:"throughput_rps"`

	Batches       uint64  `json:"batches"`
	MeanBatchSize float64 `json:"mean_batch_size"`
	MaxBatchSize  uint64  `json:"max_batch_size"`

	// Failure-domain counters and state (see Metrics).
	Shed                 uint64 `json:"shed"`
	DeadlineExceeded     uint64 `json:"deadline_exceeded"`
	Canceled             uint64 `json:"canceled"`
	Degraded             uint64 `json:"degraded"`
	PrepareFailures      uint64 `json:"prepare_failures"`
	BreakerTransitions   uint64 `json:"breaker_transitions"`
	BreakerOpens         uint64 `json:"breaker_opens"`
	WorkerRestarts       uint64 `json:"worker_restarts"`
	CheckpointRecoveries uint64 `json:"checkpoint_recoveries"`
	Breaker              string `json:"breaker"`
	QueueDepth           int    `json:"queue_depth"`
	QueueCapacity        int    `json:"queue_capacity"`
	Workers              int    `json:"workers"`

	// Shard-engine counters (zero unless Options.ShardWorkers > 1).
	ShardedBatches uint64 `json:"sharded_batches"`
	ShardFallbacks uint64 `json:"shard_fallbacks"`
	ShardMessages  uint64 `json:"shard_messages"`
	ShardBytes     uint64 `json:"shard_bytes"`
	// ShardWorkerMs is the cumulative forward wall time per shard worker,
	// for spotting load imbalance across the partition.
	ShardWorkerMs []float64 `json:"shard_worker_ms,omitempty"`
	// ShardFallbackReasons breaks ShardFallbacks down by cause.
	ShardFallbackReasons map[string]uint64 `json:"shard_fallback_reasons,omitempty"`

	// Dist is the distributed shard supervisor's counters (jobs, retries,
	// failovers, group-down degradations); nil unless Options.Dist is set.
	Dist *dist.SuperStats `json:"dist,omitempty"`

	// Mutation-subsystem counters (zero unless /update is exercised).
	Updates          uint64 `json:"updates"`
	UpdateErrors     uint64 `json:"update_errors"`
	MutationsApplied uint64 `json:"mutations_applied"`
	RepairSplices    uint64 `json:"repair_splices"`
	RepairRebuilds   uint64 `json:"repair_rebuilds"`
	SessionAdoptions uint64 `json:"session_adoptions"`
	MutationSessions int    `json:"mutation_sessions"`

	Cache CacheStats `json:"cache"`

	// Arena reports the shared scratch arena's occupancy: borrows, bucket
	// hit/miss rates, and peak resident bytes per precision. A growing
	// miss rate or peak means steady-state serving is still allocating.
	Arena tensor.ArenaStats `json:"arena"`

	// Precision is the serving arithmetic ("f64", or "f32" when the
	// float32 fast path is active).
	Precision string `json:"precision"`

	QueueLatency      HistogramStats `json:"queue_latency"`
	PreprocessLatency HistogramStats `json:"preprocess_latency"`
	ForwardLatency    HistogramStats `json:"forward_latency"`
	TotalLatency      HistogramStats `json:"total_latency"`
	UpdateLatency     HistogramStats `json:"update_latency"`
	RepairLatency     HistogramStats `json:"repair_latency"`
}

// Snapshot freezes every counter. withBuckets includes raw histogram
// buckets (the /metrics endpoint does; log lines don't).
func (m *Metrics) Snapshot(cache CacheStats, withBuckets bool) Snapshot {
	uptime := time.Since(m.start).Seconds()
	// Load errors before requests: errors never exceeds requests at any
	// instant, and requests only grows, so this order keeps the snapshot's
	// invariant errors ≤ requests even while both counters advance.
	errors := m.errors.Load()
	requests := m.requests.Load()
	m.batchMu.Lock()
	batches, batched, maxBatch := m.batches, m.batched, m.maxBatch
	m.batchMu.Unlock()
	s := Snapshot{
		UptimeSec:    uptime,
		Requests:     requests,
		Errors:       errors,
		Batches:      batches,
		MaxBatchSize: maxBatch,
		Cache:        cache,

		Shed:                 m.shed.Load(),
		DeadlineExceeded:     m.deadlineExceeded.Load(),
		Canceled:             m.canceled.Load(),
		Degraded:             m.degraded.Load(),
		PrepareFailures:      m.prepareFailures.Load(),
		BreakerTransitions:   m.breakerTransitions.Load(),
		BreakerOpens:         m.breakerOpens.Load(),
		WorkerRestarts:       m.workerRestarts.Load(),
		CheckpointRecoveries: m.checkpointRecoveries.Load(),

		ShardedBatches: m.shardedBatches.Load(),
		ShardFallbacks: m.shardFallbacks.Load(),
		ShardMessages:  m.shardMessages.Load(),
		ShardBytes:     m.shardBytes.Load(),

		Updates:          m.updates.Load(),
		UpdateErrors:     m.updateErrors.Load(),
		MutationsApplied: m.mutationsApplied.Load(),
		RepairSplices:    m.repairSplices.Load(),
		RepairRebuilds:   m.repairRebuilds.Load(),
		SessionAdoptions: m.sessionAdoptions.Load(),

		QueueLatency:      m.queue.snapshot(withBuckets),
		PreprocessLatency: m.preprocess.snapshot(withBuckets),
		ForwardLatency:    m.forward.snapshot(withBuckets),
		TotalLatency:      m.total.snapshot(withBuckets),
		UpdateLatency:     m.update.snapshot(withBuckets),
		RepairLatency:     m.repair.snapshot(withBuckets),
	}
	if uptime > 0 {
		s.ThroughputRPS = float64(s.Requests) / uptime
	}
	if batches > 0 {
		s.MeanBatchSize = float64(batched) / float64(batches)
	}
	m.shardMu.Lock()
	if len(m.shardWorkerNs) > 0 {
		s.ShardWorkerMs = make([]float64, len(m.shardWorkerNs))
		for i, ns := range m.shardWorkerNs {
			s.ShardWorkerMs[i] = ms(time.Duration(ns))
		}
	}
	m.shardMu.Unlock()
	m.shardFallbackMu.Lock()
	if len(m.shardFallbackReasons) > 0 {
		s.ShardFallbackReasons = make(map[string]uint64, len(m.shardFallbackReasons))
		for k, v := range m.shardFallbackReasons {
			s.ShardFallbackReasons[k] = v
		}
	}
	m.shardFallbackMu.Unlock()
	return s
}
