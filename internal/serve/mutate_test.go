package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"mega/internal/graph"
	"mega/internal/models"
)

// mutatedEdges mirrors the maintainer's canonical successor edge order on
// the client side: removes compact the COO list preserving order, adds
// append as (min,max). A client that reconstructs the mutated graph this
// way computes the same fingerprint the /update response reports, so its
// next /predict is a cache hit. This mirroring is the wire contract
// documented on UpdateResponse.Fingerprint.
func mutatedEdges(t *testing.T, base [][2]int32, removes, adds [][2]int32) [][2]int32 {
	t.Helper()
	out := append([][2]int32(nil), base...)
	for _, rm := range removes {
		found := -1
		for i, e := range out {
			if (e[0] == rm[0] && e[1] == rm[1]) || (e[0] == rm[1] && e[1] == rm[0]) {
				found = i
				break
			}
		}
		if found < 0 {
			t.Fatalf("remove (%d,%d) not in edge list", rm[0], rm[1])
		}
		out = append(out[:found], out[found+1:]...)
	}
	for _, ad := range adds {
		u, v := ad[0], ad[1]
		if u > v {
			u, v = v, u
		}
		out = append(out, [2]int32{u, v})
	}
	return out
}

// pickMutations scans a graph for nRemove existing edges and nAdd absent
// non-loop pairs.
func pickMutations(t *testing.T, g *graph.Graph, nRemove, nAdd int) (removes, adds [][2]int32) {
	t.Helper()
	for i := 0; i < nRemove && i < g.NumEdges(); i++ {
		e := g.EdgeAt(i * 2 % g.NumEdges())
		pair := [2]int32{e.Src, e.Dst}
		dup := false
		for _, r := range removes {
			if r == pair {
				dup = true
			}
		}
		if !dup {
			removes = append(removes, pair)
		}
	}
	n := int32(g.NumNodes())
	for u := int32(0); int32(len(adds)) < int32(nAdd) && u < n; u++ {
		for v := u + 1; len(adds) < nAdd && v < n; v++ {
			if !g.HasEdge(u, v) {
				adds = append(adds, [2]int32{u, v})
			}
		}
	}
	if len(adds) < nAdd {
		t.Fatalf("graph too dense to find %d absent edges", nAdd)
	}
	return removes, adds
}

func postJSON(t *testing.T, url string, body any, out any) (int, string) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, string(raw)
}

// TestUpdateEndToEnd is the serving acceptance path: train → serve → POST
// /update a mutation batch → /predict the mutated graph. The prediction
// must be a cache hit on the repaired representation and bit-identical to a
// second server that preprocesses the mutated graph from scratch.
func TestUpdateEndToEnd(t *testing.T) {
	s, ds, _ := trainedServer(t, Options{MaxBatch: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	inst := ds.Val[0]
	g := inst.G
	base := make([][2]int32, g.NumEdges())
	for i := range base {
		e := g.EdgeAt(i)
		base[i] = [2]int32{e.Src, e.Dst}
	}
	removes, adds := pickMutations(t, g, 1, 2)

	var up UpdateResponse
	code, raw := postJSON(t, ts.URL+"/update", UpdateRequest{
		Base:   &GraphRequest{NumNodes: g.NumNodes(), Edges: base},
		Remove: removes,
		Add:    adds,
	}, &up)
	if code != http.StatusOK {
		t.Fatalf("/update = %d: %s", code, raw)
	}
	if !up.Adopted {
		t.Error("first update should report a fresh adoption")
	}
	if up.Splices+up.Rebuilds != 1 {
		t.Errorf("repairs %d+%d, want 1 fused repair for the batch", up.Splices, up.Rebuilds)
	}

	// Client-side reconstruction of the canonical successor graph.
	mutated := mutatedEdges(t, base, removes, adds)
	mg, err := graphFromPairs(g.NumNodes(), mutated)
	if err != nil {
		t.Fatal(err)
	}
	if got := mg.Fingerprint().String(); got != up.Fingerprint {
		t.Fatalf("client canonical fingerprint %s, server %s", got, up.Fingerprint)
	}
	if up.NumEdges != mg.NumEdges() || up.NumNodes != mg.NumNodes() {
		t.Errorf("response sizes %d/%d, want %d/%d", up.NumNodes, up.NumEdges, mg.NumNodes(), mg.NumEdges())
	}

	// Predict through the repaired, published representation.
	var pred Prediction
	code, raw = postJSON(t, ts.URL+"/predict", GraphRequest{
		NumNodes: g.NumNodes(), Edges: mutated, NodeFeats: inst.NodeFeat,
	}, &pred)
	if code != http.StatusOK {
		t.Fatalf("/predict = %d: %s", code, raw)
	}
	if !pred.CacheHit {
		t.Error("prediction after /update should hit the published representation")
	}

	// A second server over the same loaded model preprocesses the mutated
	// graph from scratch; bit-identity is the acceptance criterion.
	fresh, err := New(s.model, s.meta, Options{MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	mi := inst
	mi.G = mg
	mi.EdgeFeat = make([]int32, mg.NumEdges())
	want, err := fresh.Predict(mi)
	if err != nil {
		t.Fatal(err)
	}
	if want.CacheHit {
		t.Error("fresh server cannot cache-hit")
	}
	if len(pred.Output) != len(want.Output) {
		t.Fatalf("output width %d vs %d", len(pred.Output), len(want.Output))
	}
	for i := range want.Output {
		if math.Float64bits(pred.Output[i]) != math.Float64bits(want.Output[i]) {
			t.Fatalf("repaired-rep output[%d] = %x, fresh-preprocess = %x",
				i, math.Float64bits(pred.Output[i]), math.Float64bits(want.Output[i]))
		}
	}

	snap := s.MetricsSnapshot(false)
	if snap.Updates != 1 || snap.UpdateErrors != 0 {
		t.Errorf("updates=%d errors=%d, want 1/0", snap.Updates, snap.UpdateErrors)
	}
	if snap.MutationsApplied != uint64(len(removes)+len(adds)) {
		t.Errorf("mutations_applied=%d, want %d", snap.MutationsApplied, len(removes)+len(adds))
	}
	if snap.RepairSplices+snap.RepairRebuilds != 1 {
		t.Errorf("splices %d + rebuilds %d, want 1 fused repair",
			snap.RepairSplices, snap.RepairRebuilds)
	}
	if snap.MutationSessions != 1 || snap.SessionAdoptions != 1 {
		t.Errorf("sessions=%d adoptions=%d, want 1/1", snap.MutationSessions, snap.SessionAdoptions)
	}
	if snap.UpdateLatency.Count != 1 || snap.RepairLatency.Count != 1 {
		t.Errorf("update/repair latency counts %d/%d, want 1/1",
			snap.UpdateLatency.Count, snap.RepairLatency.Count)
	}
}

func graphFromPairs(n int, pairs [][2]int32) (*graph.Graph, error) {
	edges := make([]graph.Edge, len(pairs))
	for i, p := range pairs {
		edges[i] = graph.Edge{Src: p[0], Dst: p[1]}
	}
	return graph.New(n, edges, false)
}

// TestUpdateSessionContinuation chains updates by fingerprint: the second
// batch must find the resident session (Adopted=false) and the lineage's
// final state must equal applying both batches to the base.
func TestUpdateSessionContinuation(t *testing.T) {
	s, ds, _ := trainedServer(t, Options{MaxBatch: 1})
	inst := ds.Val[2]
	g := inst.G
	base := make([][2]int32, g.NumEdges())
	for i := range base {
		e := g.EdgeAt(i)
		base[i] = [2]int32{e.Src, e.Dst}
	}
	_, adds := pickMutations(t, g, 0, 3)

	up1, err := s.Update(UpdateRequest{
		Base: &GraphRequest{NumNodes: g.NumNodes(), Edges: base},
		Add:  adds[:1],
	})
	if err != nil {
		t.Fatal(err)
	}
	up2, err := s.Update(UpdateRequest{Fingerprint: up1.Fingerprint, Add: adds[1:]})
	if err != nil {
		t.Fatal(err)
	}
	if up2.Adopted {
		t.Error("second update should continue the resident session")
	}
	mutated := mutatedEdges(t, base, nil, adds)
	mg, err := graphFromPairs(g.NumNodes(), mutated)
	if err != nil {
		t.Fatal(err)
	}
	if mg.Fingerprint().String() != up2.Fingerprint {
		t.Error("chained updates diverged from applying both batches at once")
	}
	if s.MetricsSnapshot(false).SessionAdoptions != 1 {
		t.Error("continuation should not re-adopt")
	}

	// Re-addressing an older fingerprint forks from its cached snapshot.
	up3, err := s.Update(UpdateRequest{Fingerprint: up1.Fingerprint, Add: adds[1:]})
	if err != nil {
		t.Fatal(err)
	}
	if !up3.Adopted {
		t.Error("update against a superseded fingerprint should fork via adoption")
	}
	if up3.Fingerprint != up2.Fingerprint {
		t.Error("fork applying the same batch must converge to the same successor")
	}
}

// TestUpdateErrorMapping pins the HTTP taxonomy for every rejection class.
func TestUpdateErrorMapping(t *testing.T) {
	s, ds, _ := trainedServer(t, Options{MaxBatch: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	inst := ds.Val[3]
	g := inst.G
	base := make([][2]int32, g.NumEdges())
	for i := range base {
		e := g.EdgeAt(i)
		base[i] = [2]int32{e.Src, e.Dst}
	}
	e0 := g.EdgeAt(0)
	baseReq := &GraphRequest{NumNodes: g.NumNodes(), Edges: base}

	cases := []struct {
		name string
		req  UpdateRequest
		want int
	}{
		{"unknown fingerprint", UpdateRequest{
			Fingerprint: graph.Fingerprint{}.String(), Add: [][2]int32{{0, 1}},
		}, http.StatusNotFound},
		{"malformed fingerprint", UpdateRequest{
			Fingerprint: "zz", Add: [][2]int32{{0, 1}},
		}, http.StatusBadRequest},
		{"neither base nor fingerprint", UpdateRequest{
			Add: [][2]int32{{0, 1}},
		}, http.StatusBadRequest},
		{"duplicate add", UpdateRequest{
			Base: baseReq, Add: [][2]int32{{e0.Src, e0.Dst}},
		}, http.StatusConflict},
		{"missing remove", UpdateRequest{
			Base: baseReq, Remove: [][2]int32{{int32(g.NumNodes()) - 1, int32(g.NumNodes()) - 2}},
		}, http.StatusConflict},
		{"self loop", UpdateRequest{
			Base: baseReq, Add: [][2]int32{{1, 1}},
		}, http.StatusBadRequest},
		{"vertex out of range", UpdateRequest{
			Base: baseReq, Add: [][2]int32{{0, int32(g.NumNodes())}},
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if tc.name == "missing remove" && g.HasEdge(int32(g.NumNodes())-1, int32(g.NumNodes())-2) {
			continue
		}
		code, raw := postJSON(t, ts.URL+"/update", tc.req, nil)
		if code != tc.want {
			t.Errorf("%s: HTTP %d, want %d (%s)", tc.name, code, tc.want, raw)
		}
	}

	// A rejected batch must leave the lineage usable: the base fingerprint
	// stays addressable and a valid batch still lands.
	_, adds := pickMutations(t, g, 0, 1)
	if _, err := s.Update(UpdateRequest{
		Fingerprint: g.Fingerprint().String(), Add: adds,
	}); err != nil {
		t.Fatalf("valid update after rejected batches: %v", err)
	}

	snap := s.MetricsSnapshot(false)
	if snap.UpdateErrors == 0 {
		t.Error("rejections should count as update errors")
	}

	// Non-MEGA servers cannot maintain representations: 501.
	dgl, err := New(s.model, s.meta, Options{Engine: models.EngineDGL, MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer dgl.Close()
	dts := httptest.NewServer(dgl.Handler())
	defer dts.Close()
	code, raw := postJSON(t, dts.URL+"/update", UpdateRequest{Base: baseReq, Add: adds}, nil)
	if code != http.StatusNotImplemented {
		t.Errorf("dgl /update = %d, want 501 (%s)", code, raw)
	}
}

// TestUpdateShardedBitIdentity repeats the acceptance check with the
// shard-parallel engine serving the repaired representation.
func TestUpdateShardedBitIdentity(t *testing.T) {
	s, ds, _ := trainedServer(t, Options{
		MaxBatch: 1, ShardWorkers: 2, ShardVertexThreshold: 1,
	})
	inst := ds.Val[4]
	g := inst.G
	base := make([][2]int32, g.NumEdges())
	for i := range base {
		e := g.EdgeAt(i)
		base[i] = [2]int32{e.Src, e.Dst}
	}
	removes, adds := pickMutations(t, g, 1, 1)
	up, err := s.Update(UpdateRequest{
		Base:   &GraphRequest{NumNodes: g.NumNodes(), Edges: base},
		Remove: removes,
		Add:    adds,
	})
	if err != nil {
		t.Fatal(err)
	}
	mg, err := graphFromPairs(g.NumNodes(), mutatedEdges(t, base, removes, adds))
	if err != nil {
		t.Fatal(err)
	}
	if mg.Fingerprint().String() != up.Fingerprint {
		t.Fatal("canonical fingerprint mismatch")
	}
	mi := inst
	mi.G = mg
	mi.EdgeFeat = make([]int32, mg.NumEdges())

	got, err := s.Predict(mi)
	if err != nil {
		t.Fatal(err)
	}
	if !got.CacheHit {
		t.Error("sharded predict should hit the published repaired rep")
	}
	mono, err := New(s.model, s.meta, Options{MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer mono.Close()
	want, err := mono.Predict(mi)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Output {
		if math.Float64bits(got.Output[i]) != math.Float64bits(want.Output[i]) {
			t.Fatalf("sharded repaired output[%d] differs from monolithic fresh: %g vs %g",
				i, got.Output[i], want.Output[i])
		}
	}
}

// TestMutatorPoolEviction bounds resident lineages and confirms evicted
// ones remain addressable through their cached snapshots.
func TestMutatorPoolEviction(t *testing.T) {
	s, ds, _ := trainedServer(t, Options{MaxBatch: 1, MutationSessions: 2})
	fps := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		inst := ds.Val[i]
		g := inst.G
		base := make([][2]int32, g.NumEdges())
		for j := range base {
			e := g.EdgeAt(j)
			base[j] = [2]int32{e.Src, e.Dst}
		}
		_, adds := pickMutations(t, g, 0, 1)
		up, err := s.Update(UpdateRequest{
			Base: &GraphRequest{NumNodes: g.NumNodes(), Edges: base},
			Add:  adds,
		})
		if err != nil {
			t.Fatal(err)
		}
		fps = append(fps, up.Fingerprint)
	}
	if n := s.mutators.Len(); n != 2 {
		t.Errorf("pool holds %d sessions, want capacity 2", n)
	}
	// The first lineage was evicted; updating it must re-adopt from its
	// published snapshot, not 404.
	g0 := ds.Val[0].G
	var rm [][2]int32
	e := g0.EdgeAt(0)
	rm = append(rm, [2]int32{e.Src, e.Dst})
	up, err := s.Update(UpdateRequest{Fingerprint: fps[0], Remove: rm})
	if err != nil {
		t.Fatalf("update of evicted lineage: %v", err)
	}
	if !up.Adopted {
		t.Error("evicted lineage should re-adopt")
	}
}
