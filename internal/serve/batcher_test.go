package serve

import (
	"testing"
	"time"
)

func startBatcher(maxBatch int, maxWait time.Duration, clock Clock) *batcher {
	b := newBatcher(maxBatch, maxWait, 64, clock)
	go b.run()
	return b
}

func TestBatcherFlushesOnMaxBatch(t *testing.T) {
	// maxWait far beyond the test deadline: only the size trigger can
	// flush.
	b := startBatcher(3, time.Hour, nil)
	defer close(b.in)
	for i := 0; i < 3; i++ {
		b.in <- &pending{enqueued: time.Now()}
	}
	select {
	case batch := <-b.out:
		if len(batch) != 3 {
			t.Fatalf("batch size = %d, want 3", len(batch))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("full batch never flushed")
	}
}

func TestBatcherFlushesOnMaxWait(t *testing.T) {
	b := startBatcher(100, 10*time.Millisecond, nil)
	defer close(b.in)
	b.in <- &pending{enqueued: time.Now()}
	select {
	case batch := <-b.out:
		if len(batch) != 1 {
			t.Fatalf("batch size = %d, want 1", len(batch))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("lone request stranded past maxWait")
	}
}

// TestBatcherMaxWaitDeterministic drives the MaxWait flush with a manual
// clock: an open batch must hold exactly until the deadline — no flush one
// tick before it, a flush the moment it is reached — with no wall-time
// sleeps anywhere in the test.
func TestBatcherMaxWaitDeterministic(t *testing.T) {
	clock := NewManualClock(time.Unix(0, 0))
	b := startBatcher(100, 10*time.Millisecond, clock)
	defer close(b.in)

	b.in <- &pending{enqueued: clock.Now()}
	b.in <- &pending{enqueued: clock.Now()}
	// The batch opener arms the timer inside the dispatcher goroutine;
	// wait until it is armed and both requests joined the batch before
	// advancing the clock.
	awaitArmedAndDrained(t, clock, b)

	// One tick short of MaxWait: the batch must still be open.
	clock.Advance(10*time.Millisecond - time.Nanosecond)
	select {
	case batch := <-b.out:
		t.Fatalf("batch of %d flushed before MaxWait elapsed", len(batch))
	default:
	}

	// The final tick fires the deadline: the held batch flushes.
	clock.Advance(time.Nanosecond)
	select {
	case batch := <-b.out:
		if len(batch) != 2 {
			t.Fatalf("batch size = %d, want 2", len(batch))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("batch never flushed at the MaxWait deadline")
	}
}

// TestBatcherMaxWaitRearms pins that each batch opener re-arms the full
// MaxWait window: a second batch opened after the first flush waits its
// own full deadline, not a stale remainder of the first.
func TestBatcherMaxWaitRearms(t *testing.T) {
	clock := NewManualClock(time.Unix(0, 0))
	b := startBatcher(100, 5*time.Millisecond, clock)
	defer close(b.in)

	for round := 0; round < 3; round++ {
		b.in <- &pending{enqueued: clock.Now()}
		awaitArmedAndDrained(t, clock, b)
		clock.Advance(5 * time.Millisecond)
		select {
		case batch := <-b.out:
			if len(batch) != 1 {
				t.Fatalf("round %d: batch size = %d, want 1", round, len(batch))
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("round %d: batch never flushed", round)
		}
	}
}

// TestBatcherSizeFlushCancelsTimer pins the full-batch path under a manual
// clock: when the size trigger flushes, the armed timer is stopped, so a
// later Advance past the old deadline does not flush a phantom batch.
func TestBatcherSizeFlushCancelsTimer(t *testing.T) {
	clock := NewManualClock(time.Unix(0, 0))
	b := startBatcher(2, 10*time.Millisecond, clock)
	defer close(b.in)

	b.in <- &pending{enqueued: clock.Now()}
	b.in <- &pending{enqueued: clock.Now()}
	select {
	case batch := <-b.out:
		if len(batch) != 2 {
			t.Fatalf("batch size = %d, want 2", len(batch))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("full batch never flushed")
	}

	// Move the clock so the stale deadline (t=10ms) and the fresh batch's
	// own deadline (t=16ms) are distinguishable, open a fresh batch, then
	// advance past the stale deadline but short of the fresh one: nothing
	// may flush — a flush here would be the cancelled timer firing.
	clock.Advance(6 * time.Millisecond)
	b.in <- &pending{enqueued: clock.Now()}
	awaitArmedAndDrained(t, clock, b)
	clock.Advance(5 * time.Millisecond) // t=11ms: past the stale 10ms deadline
	select {
	case batch := <-b.out:
		t.Fatalf("stale timer flushed a batch of %d", len(batch))
	default:
	}
	clock.Advance(5 * time.Millisecond) // t=16ms: the fresh batch's deadline
	select {
	case batch := <-b.out:
		if len(batch) != 1 {
			t.Fatalf("batch size = %d, want 1", len(batch))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second batch never flushed at its own deadline")
	}
}

// awaitArmedAndDrained blocks until the dispatcher has opened a batch
// (armed the MaxWait timer) and absorbed every queued request, so a
// subsequent Advance deterministically races nothing.
func awaitArmedAndDrained(t *testing.T, clock *ManualClock, b *batcher) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for clock.Armed() == 0 || len(b.in) > 0 {
		if time.Now().After(deadline) {
			t.Fatal("dispatcher never armed the MaxWait timer")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestBatcherDrainsOnClose(t *testing.T) {
	b := startBatcher(100, time.Hour, nil)
	b.in <- &pending{enqueued: time.Now()}
	b.in <- &pending{enqueued: time.Now()}
	close(b.in)
	var got int
	for batch := range b.out {
		got += len(batch)
	}
	if got != 2 {
		t.Fatalf("drained %d requests, want 2", got)
	}
}

func TestBatcherSingletonMaxBatch(t *testing.T) {
	b := startBatcher(1, time.Hour, nil)
	defer close(b.in)
	for i := 0; i < 4; i++ {
		b.in <- &pending{enqueued: time.Now()}
		select {
		case batch := <-b.out:
			if len(batch) != 1 {
				t.Fatalf("batch size = %d, want 1", len(batch))
			}
		case <-time.After(5 * time.Second):
			t.Fatal("maxBatch=1 should flush immediately")
		}
	}
}
