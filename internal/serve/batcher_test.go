package serve

import (
	"testing"
	"time"
)

func startBatcher(maxBatch int, maxWait time.Duration) *batcher {
	b := newBatcher(maxBatch, maxWait, 64)
	go b.run()
	return b
}

func TestBatcherFlushesOnMaxBatch(t *testing.T) {
	// maxWait far beyond the test deadline: only the size trigger can
	// flush.
	b := startBatcher(3, time.Hour)
	defer close(b.in)
	for i := 0; i < 3; i++ {
		b.in <- &pending{enqueued: time.Now()}
	}
	select {
	case batch := <-b.out:
		if len(batch) != 3 {
			t.Fatalf("batch size = %d, want 3", len(batch))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("full batch never flushed")
	}
}

func TestBatcherFlushesOnMaxWait(t *testing.T) {
	b := startBatcher(100, 10*time.Millisecond)
	defer close(b.in)
	b.in <- &pending{enqueued: time.Now()}
	select {
	case batch := <-b.out:
		if len(batch) != 1 {
			t.Fatalf("batch size = %d, want 1", len(batch))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("lone request stranded past maxWait")
	}
}

func TestBatcherDrainsOnClose(t *testing.T) {
	b := startBatcher(100, time.Hour)
	b.in <- &pending{enqueued: time.Now()}
	b.in <- &pending{enqueued: time.Now()}
	close(b.in)
	var got int
	for batch := range b.out {
		got += len(batch)
	}
	if got != 2 {
		t.Fatalf("drained %d requests, want 2", got)
	}
}

func TestBatcherSingletonMaxBatch(t *testing.T) {
	b := startBatcher(1, time.Hour)
	defer close(b.in)
	for i := 0; i < 4; i++ {
		b.in <- &pending{enqueued: time.Now()}
		select {
		case batch := <-b.out:
			if len(batch) != 1 {
				t.Fatalf("batch size = %d, want 1", len(batch))
			}
		case <-time.After(5 * time.Second):
			t.Fatal("maxBatch=1 should flush immediately")
		}
	}
}
