package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"mega/internal/faults"
	"mega/internal/models"
)

// Robustness tests for the serving failure domains (PR 4): deadlines and
// cancellation, load shedding, degraded fallback behind the circuit
// breaker, worker crash replacement, bounded shutdown drain, and the
// metrics that account for each. Faults are process-global, so none of
// these tests run in parallel; each disables injection on exit.

func enableFaults(t *testing.T, points ...faults.PointConfig) {
	t.Helper()
	faults.ArmT(t, faults.Plan{Seed: 1, Points: points})
}

func TestPredictDeadlineExceeded(t *testing.T) {
	s, ds, _ := trainedServer(t, Options{MaxBatch: 1, Workers: 1, DefaultTimeout: 30 * time.Millisecond})
	enableFaults(t, faults.PointConfig{
		Name: faults.ServeForward, Prob: 1, Action: faults.ActDelay, Delay: 300 * time.Millisecond,
	})
	_, err := s.Predict(ds.Val[0])
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if got := s.MetricsSnapshot(false).DeadlineExceeded; got != 1 {
		t.Fatalf("deadline_exceeded = %d, want 1", got)
	}
	faults.Disable()
	// The server must survive an abandoned request: once the delayed
	// forward drains, fresh requests succeed again.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := s.Predict(ds.Val[0]); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never recovered after an abandoned request")
		}
	}
}

func TestPredictCancellation(t *testing.T) {
	s, ds, _ := trainedServer(t, Options{MaxBatch: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.PredictCtx(ctx, ds.Val[0])
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if got := s.MetricsSnapshot(false).Canceled; got != 1 {
		t.Fatalf("canceled = %d, want 1", got)
	}
}

func TestOverloadSheds(t *testing.T) {
	s, ds, _ := trainedServer(t, Options{MaxBatch: 1, Workers: 1, QueueDepth: 1})
	enableFaults(t, faults.PointConfig{
		Name: faults.ServeForward, Prob: 1, Action: faults.ActDelay, Delay: 500 * time.Millisecond,
	})
	// Saturate the pipeline: worker (1 delayed batch) + dispatcher (1 held
	// batch) + queue (QueueDepth=1). Once the queue channel is full it
	// stays full until the worker's 500ms delay elapses, so the next
	// request deterministically sheds.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Fillers retry their own sheds until served, so exactly
			// three requests occupy the pipeline's three slots.
			for {
				if _, err := s.Predict(ds.Val[0]); !errors.Is(err, ErrOverloaded) {
					return
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(s.batcher.in) < cap(s.batcher.in) {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled to the shedding point")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Predict(ds.Val[0]); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded with a full queue", err)
	}
	if got := s.MetricsSnapshot(false).Shed; got == 0 {
		t.Fatal("shed counter not incremented")
	}
	wg.Wait()
}

func TestDegradedFallbackOnPrepareFailure(t *testing.T) {
	s, ds, model := trainedServer(t, Options{MaxBatch: 1})
	enableFaults(t, faults.PointConfig{
		Name: faults.ServePrepare, Prob: 1, Budget: 1, Action: faults.ActError,
	})
	inst := ds.Val[0]
	pred, err := s.Predict(inst)
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	if !pred.Degraded {
		t.Fatal("prepare failure should yield a degraded prediction")
	}
	// Degraded answers are exact for the fallback engine.
	want := directForward(t, model, models.EngineDGL, inst, s.Meta().Config.Dim)
	for i := range want {
		if math.Abs(pred.Output[i]-want[i]) > 1e-12 {
			t.Fatalf("degraded output[%d] = %v, DGL direct = %v", i, pred.Output[i], want[i])
		}
	}
	snap := s.MetricsSnapshot(false)
	if snap.Degraded != 1 || snap.PrepareFailures != 1 {
		t.Fatalf("degraded = %d, prepare_failures = %d, want 1, 1", snap.Degraded, snap.PrepareFailures)
	}
	// Budget exhausted: the next request preprocesses normally and, with a
	// sub-threshold failure count, the breaker stays closed.
	pred, err = s.Predict(inst)
	if err != nil || pred.Degraded {
		t.Fatalf("after budget: pred = %+v, err = %v", pred, err)
	}
	if st := s.BreakerState(); st != BreakerClosed {
		t.Fatalf("breaker = %s, want closed below threshold", st)
	}
}

func TestBreakerOpensAndShortCircuits(t *testing.T) {
	s, ds, _ := trainedServer(t, Options{
		MaxBatch: 1, BreakerThreshold: 2, BreakerCooldown: time.Hour,
	}.WithCacheCapacity(0))
	enableFaults(t, faults.PointConfig{
		Name: faults.ServePrepare, Prob: 1, Action: faults.ActError,
	})
	for i := 0; i < 2; i++ {
		if pred, err := s.Predict(ds.Val[0]); err != nil || !pred.Degraded {
			t.Fatalf("request %d: pred = %+v, err = %v", i, pred, err)
		}
	}
	if st := s.BreakerState(); st != BreakerOpen {
		t.Fatalf("breaker = %s, want open at threshold", st)
	}
	hitsBefore := prepareHits(t)
	// Open breaker: requests skip preprocessing entirely.
	if pred, err := s.Predict(ds.Val[0]); err != nil || !pred.Degraded {
		t.Fatalf("open-breaker request: pred = %+v, err = %v", pred, err)
	}
	if got := prepareHits(t); got != hitsBefore {
		t.Fatalf("open breaker still consulted prepare: hits %d -> %d", hitsBefore, got)
	}
	snap := s.MetricsSnapshot(false)
	if snap.BreakerOpens != 1 || snap.BreakerTransitions == 0 || snap.Breaker != string(BreakerOpen) {
		t.Fatalf("snapshot breaker fields = opens %d, transitions %d, state %q",
			snap.BreakerOpens, snap.BreakerTransitions, snap.Breaker)
	}
	// /healthz reflects the degradation.
	h := s.HealthSnapshot()
	if h.Status != "degraded" || h.Breaker != string(BreakerOpen) {
		t.Fatalf("health = %+v, want degraded/open", h)
	}
}

// prepareHits reads the injection-point hit count for serve.prepare.
func prepareHits(t *testing.T) int {
	t.Helper()
	for _, r := range faults.Report() {
		if r.Name == faults.ServePrepare {
			return r.Hits
		}
	}
	t.Fatal("no report entry for serve.prepare")
	return 0
}

func TestFaultyCacheDegradesToMisses(t *testing.T) {
	s, ds, _ := trainedServer(t, Options{MaxBatch: 1})
	enableFaults(t,
		faults.PointConfig{Name: faults.ServeCacheGet, Prob: 1, Action: faults.ActError},
		faults.PointConfig{Name: faults.ServeCachePut, Prob: 1, Action: faults.ActError},
	)
	// A broken cache must cost only latency, never correctness.
	for i := 0; i < 2; i++ {
		pred, err := s.Predict(ds.Val[0])
		if err != nil || pred.CacheHit || pred.Degraded {
			t.Fatalf("request %d: pred = %+v, err = %v, want clean miss", i, pred, err)
		}
	}
	if st := s.CacheStats(); st.Hits != 0 || st.Size != 0 {
		t.Fatalf("cache stats = %+v, want untouched", st)
	}
}

func TestWorkerCrashIsIsolatedAndReplaced(t *testing.T) {
	s, ds, _ := trainedServer(t, Options{MaxBatch: 1, Workers: 1})
	enableFaults(t, faults.PointConfig{
		Name: faults.ServeDispatch, Prob: 1, Budget: 1, Action: faults.ActPanic,
	})
	_, err := s.Predict(ds.Val[0])
	if !errors.Is(err, ErrWorkerCrashed) {
		t.Fatalf("err = %v, want ErrWorkerCrashed", err)
	}
	// The replacement worker serves the next request.
	if _, err := s.Predict(ds.Val[0]); err != nil {
		t.Fatalf("predict after crash: %v", err)
	}
	snap := s.MetricsSnapshot(false)
	if snap.WorkerRestarts != 1 {
		t.Fatalf("worker_restarts = %d, want 1", snap.WorkerRestarts)
	}
	if h := s.HealthSnapshot(); h.WorkerRestarts != 1 || h.Workers != 1 {
		t.Fatalf("health = %+v", h)
	}
}

func TestShutdownDrainsInFlight(t *testing.T) {
	s, ds, _ := trainedServer(t, Options{MaxBatch: 1, Workers: 1, ShutdownGrace: 5 * time.Second})
	done := make(chan error, 1)
	go func() {
		_, err := s.Predict(ds.Val[0])
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("clean shutdown returned %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("in-flight request failed during drain: %v", err)
	}
}

func TestShutdownGraceAbortsQueued(t *testing.T) {
	s, ds, _ := trainedServer(t, Options{MaxBatch: 1, Workers: 1, QueueDepth: 4, ShutdownGrace: 30 * time.Millisecond})
	enableFaults(t, faults.PointConfig{
		Name: faults.ServeForward, Prob: 1, Budget: 1, Action: faults.ActDelay, Delay: 300 * time.Millisecond,
	})
	errs := make(chan error, 2)
	go func() { _, err := s.Predict(ds.Val[0]); errs <- err }()
	time.Sleep(50 * time.Millisecond) // first request is inside its delayed forward
	go func() { _, err := s.Predict(ds.Val[0]); errs <- err }()
	time.Sleep(20 * time.Millisecond) // second request is queued behind it
	if err := s.Shutdown(context.Background()); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("shutdown = %v, want ErrShuttingDown after grace lapsed", err)
	}
	var aborted, served int
	for i := 0; i < 2; i++ {
		switch err := <-errs; {
		case err == nil:
			served++
		case errors.Is(err, ErrShuttingDown):
			aborted++
		default:
			t.Fatalf("unexpected request error: %v", err)
		}
	}
	// The in-flight request finishes; the queued one is aborted with a
	// typed error. Nothing is silently dropped.
	if served != 1 || aborted != 1 {
		t.Fatalf("served = %d, aborted = %d, want 1 and 1", served, aborted)
	}
}

func TestHTTPTimeoutAndHealth(t *testing.T) {
	s, ds, _ := trainedServer(t, Options{MaxBatch: 1, Workers: 1})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	enableFaults(t, faults.PointConfig{
		Name: faults.ServeForward, Prob: 1, Budget: 1, Action: faults.ActDelay, Delay: 300 * time.Millisecond,
	})
	inst := ds.Val[0]
	req := GraphRequest{NumNodes: inst.G.NumNodes(), NodeFeats: inst.NodeFeat, EdgeFeats: inst.EdgeFeat, TimeoutMs: 30}
	for _, e := range inst.G.Edges() {
		req.Edges = append(req.Edges, [2]int32{e.Src, e.Dst})
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(srv.URL+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 on request timeout", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.Status != "ok" || h.QueueCapacity == 0 {
		t.Fatalf("healthz = %d %+v", resp.StatusCode, h)
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("metrics decode: %v", err)
	}
	resp.Body.Close()
	if snap.DeadlineExceeded != 1 || snap.Breaker == "" {
		t.Fatalf("metrics snapshot = %+v", snap)
	}
}
