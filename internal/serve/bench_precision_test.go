package serve

import (
	"encoding/json"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"mega/internal/datasets"
	"mega/internal/graph"
	"mega/internal/models"
	"mega/internal/tensor"
	"mega/internal/train"
)

// Envelope the f32 serving path must stay inside relative to the float64
// forward, matching the differential suite in internal/models. The bench
// asserts it on every run — a fast path outside the envelope is a bug, not
// a slow benchmark.
const (
	benchPrecMaxULP    = 1 << 14
	benchPrecMaxRelErr = 5e-3
	benchPrecRelFloor  = 1e-2
)

// TestWriteBenchPrecision regenerates BENCH_precision.json: serve-side
// throughput of the float32 fast path (Options.Precision == "f32": one
// checkpoint downcast at load, tape-free head-major kernels, pooled f32
// arena scratch) against the float64 engine over identical servers, graph
// pools, and warm representation caches, per workload class. Divergence
// between the two servers' answers is measured and asserted inside the ULP
// envelope on every run; the ≥1.5× acceptance bar applies to full runs
// (`make bench-precision`). BENCH_PRECISION_FAST=1 shrinks the timed
// rounds and skips the speedup assertion for the CI smoke.
func TestWriteBenchPrecision(t *testing.T) {
	out := os.Getenv("BENCH_PRECISION_OUT")
	if out == "" {
		t.Skip("set BENCH_PRECISION_OUT=<path> to run the precision bench (make bench-precision)")
	}
	fast := os.Getenv("BENCH_PRECISION_FAST") != ""

	cfg := models.Config{Dim: 64, Layers: 4, Heads: 4, NodeTypes: 28, EdgeTypes: 4, OutDim: 1, Seed: 3}
	m := models.NewGT(cfg)
	meta := train.Checkpoint{Model: "GT", Config: cfg, Task: datasets.TaskRegression, Dataset: "synthetic-ba"}

	s64, err := New(m, meta, Options{MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s64.Close()
	s32, err := New(m, meta, Options{MaxBatch: 1, Precision: PrecisionF32})
	if err != nil {
		t.Fatal(err)
	}
	defer s32.Close()

	classes := []struct {
		Name  string
		Nodes int
	}{
		{"small", 32},
		{"medium", 96},
		{"large", 224},
	}
	const graphsPerClass = 6
	rounds := 20
	if fast {
		rounds = 2
	}

	type row struct {
		Class     string  `json:"class"`
		Nodes     int     `json:"nodes"`
		Graphs    int     `json:"graphs"`
		Predicts  int     `json:"predicts_per_chunk"`
		Rounds    int     `json:"rounds"`
		F64NsOp   int64   `json:"f64_ns_per_predict"`
		F32NsOp   int64   `json:"f32_ns_per_predict"`
		F64RPS    float64 `json:"f64_rps"`
		F32RPS    float64 `json:"f32_rps"`
		Speedup   float64 `json:"speedup"`
		MaxULP    int64   `json:"max_ulp"`
		MaxRelErr float64 `json:"max_rel_err"`
	}
	var rows []row

	rng := rand.New(rand.NewSource(41))
	for _, class := range classes {
		pool := make([]datasets.Instance, graphsPerClass)
		for i := range pool {
			g := graph.BarabasiAlbert(rng, class.Nodes, 2)
			nf := make([]int32, class.Nodes)
			ef := make([]int32, g.NumEdges())
			for j := range nf {
				nf[j] = int32(rng.Intn(cfg.NodeTypes))
			}
			for j := range ef {
				ef[j] = int32(rng.Intn(cfg.EdgeTypes))
			}
			pool[i] = datasets.Instance{G: g, NodeFeat: nf, EdgeFeat: ef, Target: 1}
		}

		// Warm both servers' representation caches and collect the
		// divergence sample: every answer pair, not a subsample.
		var got32 []float32
		var ref64 []float64
		for _, inst := range pool {
			p64, err := s64.Predict(inst)
			if err != nil {
				t.Fatal(err)
			}
			p32, err := s32.Predict(inst)
			if err != nil {
				t.Fatal(err)
			}
			if p32.Precision != PrecisionF32 {
				t.Fatalf("fast-path prediction carries precision %q", p32.Precision)
			}
			ref64 = append(ref64, p64.Output...)
			got32 = append(got32, tensor.DowncastSlice(p32.Output)...)
		}
		div := tensor.MeasureDivergence(got32, ref64, benchPrecRelFloor)
		if err := div.Within(benchPrecMaxULP, benchPrecMaxRelErr); err != nil {
			t.Errorf("class %s outside divergence envelope: %v", class.Name, err)
		}

		// Interleave f64 and f32 chunks and keep each side's fastest chunk:
		// on a shared 1-vCPU box single long blocks are at the mercy of
		// frequency and GC phase, and min-of-chunks removes that common-mode
		// noise from the ratio.
		predicts := len(pool)
		chunk := func(s *Server) time.Duration {
			start := time.Now()
			for _, inst := range pool {
				if _, err := s.Predict(inst); err != nil {
					t.Fatal(err)
				}
			}
			return time.Since(start)
		}
		d64, d32 := time.Duration(1<<62), time.Duration(1<<62)
		for r := 0; r < rounds; r++ {
			if d := chunk(s64); d < d64 {
				d64 = d
			}
			if d := chunk(s32); d < d32 {
				d32 = d
			}
		}

		r := row{
			Class:     class.Name,
			Nodes:     class.Nodes,
			Graphs:    len(pool),
			Predicts:  predicts,
			F64NsOp:   d64.Nanoseconds() / int64(predicts),
			F32NsOp:   d32.Nanoseconds() / int64(predicts),
			F64RPS:    precRound2(float64(predicts) / d64.Seconds()),
			F32RPS:    precRound2(float64(predicts) / d32.Seconds()),
			Rounds:    rounds,
			MaxULP:    div.MaxULP,
			MaxRelErr: div.MaxRelErr,
		}
		r.Speedup = precRound2(float64(r.F64NsOp) / float64(r.F32NsOp))
		rows = append(rows, r)
		t.Logf("%-6s n=%-3d  f64 %7.2fms  f32 %7.2fms  speedup %.2fx  max ULP %d  max rel %.2g",
			class.Name, class.Nodes, float64(r.F64NsOp)/1e6, float64(r.F32NsOp)/1e6, r.Speedup, r.MaxULP, r.MaxRelErr)
	}

	// Attention-layout comparison at the model level: the same frozen f32
	// weights forwarded through head-major (the serving default) and
	// interleaved scratch. Outputs are bit-identical; the delta is memory
	// traffic.
	layoutRows := benchLayouts(t, m, rows[len(rows)-1].Nodes, rounds)

	best := 0.0
	for _, r := range rows {
		if r.Speedup > best {
			best = r.Speedup
		}
	}
	if !fast && best < 1.5 {
		t.Errorf("acceptance: no workload class reached 1.5x (best %.2fx)", best)
	}

	snap := s32.MetricsSnapshot(false)
	doc := map[string]any{
		"schema_version": 1,
		"description": "Serve-side throughput of the float32 inference fast path (-precision f32: " +
			"checkpoint downcast once at load, tape-free head-major fused kernels, pooled f32 arena " +
			"scratch) vs the float64 engine. Identical model, graph pools, MaxBatch=1 servers, and " +
			"warm representation caches — per predict the forward pass is the variable. Timing " +
			"alternates f64/f32 chunks and keeps each side's fastest chunk, rejecting the shared " +
			"box's frequency and GC phase as common-mode noise. Divergence " +
			"is measured over every warmup answer pair and asserted inside the ULP envelope on " +
			"every run. The layout comparison forwards the same frozen weights through both " +
			"attention scratch layouts (bit-identical outputs). Regenerate with `make bench-precision`.",
		"machine": map[string]any{
			"goos":       runtime.GOOS,
			"goarch":     runtime.GOARCH,
			"cpu":        precCPUModel(),
			"num_cpu":    runtime.NumCPU(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"go_version": runtime.Version(),
		},
		"model": map[string]any{
			"kind": "GT", "dim": cfg.Dim, "layers": cfg.Layers, "heads": cfg.Heads,
		},
		"envelope": map[string]any{
			"max_ulp":     benchPrecMaxULP,
			"max_rel_err": benchPrecMaxRelErr,
			"rel_floor":   benchPrecRelFloor,
		},
		"results": rows,
		"layouts": layoutRows,
		"arena": map[string]any{
			"f32_borrows":      snap.Arena.F32.Borrows,
			"f32_bucket_hits":  snap.Arena.F32.BucketHits,
			"f32_peak_bytes":   snap.Arena.F32.PeakBytes,
			"f32_in_use_bytes": snap.Arena.F32.InUseBytes,
		},
		"summary": map[string]any{
			"best_speedup": precRound2(best),
			"note": "Speedup comes from the SSE fast-path kernels (4-wide float32 lanes the " +
				"float64 training engine's scalar tape kernels don't have), the tape-free " +
				"forward, halved memory traffic, and head-major attention streams — not " +
				"parallelism (the box is 1-vCPU). Degraded (fallback-engine) answers always " +
				"run float64 and are not measured here.",
		},
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

// benchLayouts times forward-only passes of the same frozen weights in
// both attention scratch layouts over one largest-class graph.
func benchLayouts(t *testing.T, m models.Model, nodes, rounds int) []map[string]any {
	rng := rand.New(rand.NewSource(43))
	g := graph.BarabasiAlbert(rng, nodes, 2)
	nf := make([]int32, nodes)
	ef := make([]int32, g.NumEdges())
	for j := range nf {
		nf[j] = int32(rng.Intn(28))
	}
	for j := range ef {
		ef[j] = int32(rng.Intn(4))
	}
	insts := []datasets.Instance{{G: g, NodeFeat: nf, EdgeFeat: ef, Target: 1}}
	ctx, err := models.NewMegaContext(insts, models.MegaOptions{}, nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	arena := tensor.NewArena()
	iters := 4 * rounds

	layouts := []tensor.AttnLayout{tensor.LayoutHeadMajor, tensor.LayoutInterleaved}
	fms := make([]models.ModelF32, len(layouts))
	mins := make([]time.Duration, len(layouts))
	for i, layout := range layouts {
		fm, err := models.PrepareF32Layout(m, layout)
		if err != nil {
			t.Fatal(err)
		}
		fms[i] = fm
		mins[i] = time.Duration(1 << 62)
		o := fm.Forward(ctx, arena) // warm
		arena.PutF32(o)
	}
	// Alternate layouts per chunk and keep the fastest chunk each, for the
	// same common-mode noise rejection as the server timing.
	const perChunk = 4
	for i := 0; i < iters; i += perChunk {
		for li, fm := range fms {
			start := time.Now()
			for c := 0; c < perChunk; c++ {
				o := fm.Forward(ctx, arena)
				arena.PutF32(o)
			}
			if d := time.Since(start); d < mins[li] {
				mins[li] = d
			}
		}
	}
	var rows []map[string]any
	for li, layout := range layouts {
		nsOp := mins[li].Nanoseconds() / perChunk
		rows = append(rows, map[string]any{
			"layout":            layout.String(),
			"nodes":             nodes,
			"ns_per_forward":    nsOp,
			"forwards_measured": iters,
		})
		t.Logf("layout %-11s n=%d  %7.2fms/forward", layout, nodes, float64(nsOp)/1e6)
	}
	return rows
}

func precCPUModel() string {
	buf, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(buf), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}

func precRound2(x float64) float64 { return float64(int64(x*100+0.5)) / 100 }
