package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mega/internal/datasets"
	"mega/internal/faults"
	"mega/internal/models"
	"mega/internal/train"
)

// Chaos harness (PR 4): the full train → checkpoint → serve pipeline under
// deterministic fault injection at every registered point, with concurrent
// clients, tight deadlines, a deliberately corrupted checkpoint, and a
// shutdown racing in-flight traffic. Invariants pinned:
//
//  1. No deadlock: the whole run completes under a hard watchdog.
//  2. No lost responses: every request resolves to a prediction or a
//     typed error drawn from the service's declared failure vocabulary,
//     and the metrics account for every one of them.
//  3. Bit-identical successes: normal predictions equal the MEGA-engine
//     reference forward exactly; degraded predictions equal the fallback
//     (DGL-engine) reference exactly. Faults may slow or fail requests,
//     never silently change an answer.
//
// `go test -run Chaos -short` is the CI variant (make chaos runs the full
// size). Set CHAOS_REPORT=<path> to write the fault-point coverage log.
func TestChaosEndToEnd(t *testing.T) {
	clients, perClient := 8, 150
	if testing.Short() {
		clients, perClient = 4, 40
	}

	// --- Phase 1: train with checkpointing under checkpoint-save faults.
	dir := t.TempDir()
	faults.ArmT(t, faults.Plan{Seed: 7, Points: []faults.PointConfig{
		{Name: faults.TrainCkptSave, Prob: 0.2, Action: faults.ActError},
	}})
	ds := datasets.ZINC(datasets.Config{TrainSize: 16, ValSize: 8, TestSize: 1, Seed: 11})
	res, err := train.Run(ds, train.Options{
		Model: "GT", Engine: models.EngineMega,
		Dim: 16, Layers: 1, Heads: 2, BatchSize: 8, Epochs: 3, Seed: 11,
		CheckpointDir: dir, CheckpointEvery: 1,
	})
	if err != nil {
		t.Fatalf("train under checkpoint faults: %v", err)
	}
	if res.LastCheckpoint == "" {
		t.Fatal("training never landed a checkpoint despite save retries")
	}
	faults.Disable()

	// --- Phase 2: corrupt the newest checkpoint; serving must quarantine
	// it and fall back to the previous good epoch.
	paths, err := filepath.Glob(filepath.Join(dir, "ckpt-*.ckpt"))
	if err != nil || len(paths) < 2 {
		t.Fatalf("want >=2 checkpoints to corrupt one, have %v (err %v)", paths, err)
	}
	sort.Strings(paths)
	newest := paths[len(paths)-1]
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := NewFromCheckpointDir(dir, Options{
		MaxBatch: 4, Workers: 2, QueueDepth: 8,
		BreakerThreshold: 3, BreakerCooldown: 10 * time.Millisecond,
		MaxTimeout: 2 * time.Second, ShutdownGrace: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("serve from corrupted checkpoint dir: %v", err)
	}
	defer s.Close()
	if got := s.MetricsSnapshot(false).CheckpointRecoveries; got != 1 {
		t.Fatalf("checkpoint_recoveries = %d, want 1 (quarantined newest)", got)
	}

	// References come from the actually-served model (the fallback epoch),
	// one per instance per engine, computed outside the service.
	insts := ds.Val
	refMega := make([][]float64, len(insts))
	refDGL := make([][]float64, len(insts))
	for i, inst := range insts {
		refMega[i] = directForward(t, s.model, models.EngineMega, inst, s.meta.Config.Dim)
		refDGL[i] = directForward(t, s.model, models.EngineDGL, inst, s.meta.Config.Dim)
	}

	// --- Phase 3: concurrent clients against every serve fault point.
	// Plain Enable: phase 1's ArmT already owns the cleanup hook, and its
	// plan was explicitly disabled above, so re-arming here is safe.
	faults.Enable(faults.Plan{Seed: 1234, Points: []faults.PointConfig{
		{Name: faults.ServeCacheGet, Prob: 0.3, Action: faults.ActError},
		{Name: faults.ServeCachePut, Prob: 0.3, Action: faults.ActError},
		{Name: faults.ServePrepare, Prob: 0.25, Action: faults.ActError},
		{Name: faults.ServeDispatch, Prob: 0.02, Action: faults.ActPanic},
		{Name: faults.ServeForward, Prob: 0.15, Action: faults.ActDelay, Delay: 2 * time.Millisecond},
	}})

	var ok, degradedOK, failed atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				idx := (c*perClient + i) % len(insts)
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if i%9 == 0 {
					// A slice of traffic runs with a deadline tight enough
					// to trip under injected forward delay.
					ctx, cancel = context.WithTimeout(ctx, 3*time.Millisecond)
				}
				pred, err := s.PredictCtx(ctx, insts[idx])
				cancel()
				if err != nil {
					if !chaosErrorExpected(err) {
						t.Errorf("client %d req %d: unexpected error class: %v", c, i, err)
					}
					failed.Add(1)
					continue
				}
				want := refMega[idx]
				if pred.Degraded {
					want = refDGL[idx]
					degradedOK.Add(1)
				} else {
					ok.Add(1)
				}
				for j := range want {
					if math.Float64bits(pred.Output[j]) != math.Float64bits(want[j]) {
						t.Errorf("client %d req %d (degraded=%v): output[%d] = %x, want %x",
							c, i, pred.Degraded, j, pred.Output[j], want[j])
						break
					}
				}
			}
		}(c)
	}
	// Watchdog: the drain must finish — a hung request is a failed test,
	// not a hung CI job.
	drained := make(chan struct{})
	go func() { wg.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(2 * time.Minute):
		t.Fatal("chaos run deadlocked: clients still waiting after 2m")
	}

	// --- Phase 4: accounting. Every request resolved exactly once.
	total := uint64(clients * perClient)
	if got := ok.Load() + degradedOK.Load() + failed.Load(); got != total {
		t.Fatalf("lost responses: %d resolved of %d issued", got, total)
	}
	snap := s.MetricsSnapshot(false)
	if snap.Requests != total || snap.Errors != failed.Load() {
		t.Fatalf("metrics disagree with clients: requests %d/%d, errors %d/%d",
			snap.Requests, total, snap.Errors, failed.Load())
	}
	if ok.Load() == 0 || degradedOK.Load() == 0 {
		t.Fatalf("chaos too one-sided: %d normal, %d degraded successes (want both paths exercised)",
			ok.Load(), degradedOK.Load())
	}
	t.Logf("chaos: %d ok, %d degraded, %d failed; breaker=%s opens=%d restarts=%d shed=%d deadline=%d",
		ok.Load(), degradedOK.Load(), failed.Load(),
		snap.Breaker, snap.BreakerOpens, snap.WorkerRestarts, snap.Shed, snap.DeadlineExceeded)
	writeChaosReport(t)

	// --- Phase 5: faults off, service recovers to clean exact answers.
	faults.Disable()
	pred, err := s.Predict(insts[0])
	if err != nil || pred.Degraded {
		t.Fatalf("post-chaos predict: pred = %+v, err = %v", pred, err)
	}
	for j := range refMega[0] {
		if math.Float64bits(pred.Output[j]) != math.Float64bits(refMega[0][j]) {
			t.Fatalf("post-chaos output[%d] = %v, want %v", j, pred.Output[j], refMega[0][j])
		}
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("post-chaos shutdown not clean: %v", err)
	}
}

// chaosErrorExpected recognises the service's declared failure vocabulary;
// anything outside it is a lost-response bug.
func chaosErrorExpected(err error) bool {
	return faults.IsInjected(err) ||
		errors.Is(err, ErrOverloaded) ||
		errors.Is(err, ErrWorkerCrashed) ||
		errors.Is(err, ErrShuttingDown) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled)
}

// writeChaosReport emits fault-point coverage: to CHAOS_REPORT when set
// (the CI artifact), always to the test log.
func writeChaosReport(t *testing.T) {
	t.Helper()
	for _, r := range faults.Report() {
		t.Logf("fault point %s: hits=%d fired=%d", r.Name, r.Hits, r.Fired)
	}
	path := os.Getenv("CHAOS_REPORT")
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("CHAOS_REPORT: %v", err)
	}
	defer f.Close()
	if err := faults.WriteReport(f); err != nil {
		t.Fatalf("write chaos report: %v", err)
	}
	fmt.Fprintln(f, "status=pass")
}
