package serve

import (
	"testing"
	"time"
)

func TestBucketCountMatchesBounds(t *testing.T) {
	if numBuckets != len(latencyBounds)+1 {
		t.Fatalf("numBuckets = %d, want len(latencyBounds)+1 = %d", numBuckets, len(latencyBounds)+1)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h histogram
	for i := 0; i < 90; i++ {
		h.observe(time.Millisecond) // le 1ms bucket
	}
	for i := 0; i < 10; i++ {
		h.observe(80 * time.Millisecond) // le 100ms bucket
	}
	s := h.snapshot(true)
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P50Ms != 1 {
		t.Errorf("p50 = %v, want 1ms bucket bound", s.P50Ms)
	}
	if s.P99Ms != 100 {
		t.Errorf("p99 = %v, want 100ms bucket bound", s.P99Ms)
	}
	if s.MaxMs != 80 {
		t.Errorf("max = %v, want 80", s.MaxMs)
	}
	if s.MeanMs < 8.8 || s.MeanMs > 9.0 {
		t.Errorf("mean = %v, want ~8.9", s.MeanMs)
	}
	if len(s.Buckets) != numBuckets {
		t.Errorf("buckets = %d, want %d", len(s.Buckets), numBuckets)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h histogram
	h.observe(time.Minute) // beyond the last bound
	s := h.snapshot(false)
	if s.Count != 1 || s.P50Ms != ms(time.Minute) {
		t.Errorf("overflow observation mishandled: %+v", s)
	}
}

func TestMetricsSnapshotCounters(t *testing.T) {
	m := NewMetrics()
	m.requests.Add(3)
	m.errors.Add(1)
	m.observeBatch(2, time.Millisecond)
	m.observeBatch(4, time.Millisecond)
	s := m.Snapshot(CacheStats{Hits: 5}, false)
	if s.Requests != 3 || s.Errors != 1 || s.Batches != 2 {
		t.Errorf("counters: %+v", s)
	}
	if s.MeanBatchSize != 3 || s.MaxBatchSize != 4 {
		t.Errorf("batch sizes: mean %v max %v", s.MeanBatchSize, s.MaxBatchSize)
	}
	if s.Cache.Hits != 5 {
		t.Errorf("cache stats not threaded through: %+v", s.Cache)
	}
}
