package serve

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketCountMatchesBounds(t *testing.T) {
	if numBuckets != len(latencyBounds)+1 {
		t.Fatalf("numBuckets = %d, want len(latencyBounds)+1 = %d", numBuckets, len(latencyBounds)+1)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h histogram
	for i := 0; i < 90; i++ {
		h.observe(time.Millisecond) // le 1ms bucket
	}
	for i := 0; i < 10; i++ {
		h.observe(80 * time.Millisecond) // le 100ms bucket
	}
	s := h.snapshot(true)
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P50Ms != 1 {
		t.Errorf("p50 = %v, want 1ms bucket bound", s.P50Ms)
	}
	if s.P99Ms != 100 {
		t.Errorf("p99 = %v, want 100ms bucket bound", s.P99Ms)
	}
	if s.MaxMs != 80 {
		t.Errorf("max = %v, want 80", s.MaxMs)
	}
	if s.MeanMs < 8.8 || s.MeanMs > 9.0 {
		t.Errorf("mean = %v, want ~8.9", s.MeanMs)
	}
	if len(s.Buckets) != numBuckets {
		t.Errorf("buckets = %d, want %d", len(s.Buckets), numBuckets)
	}
}

// TestHistogramSmallCountQuantiles pins the ceiling-rank quantile: with n
// observations the q-quantile is the smallest value holding at least
// ⌈q·n⌉ observations. A truncating rank would collapse p90 and p99 onto
// the same observation at n=10 and report p99 from the wrong bucket.
func TestHistogramSmallCountQuantiles(t *testing.T) {
	cases := []struct {
		name          string
		durations     []time.Duration
		p50, p90, p99 float64
	}{
		{
			// Ranks over n=10: p50→⌈5⌉=5, p90→⌈9⌉=9, p99→⌈9.9⌉=10.
			// The 10th observation is the single slow one, so p99 must
			// report its bucket, not the 9-fast-observations bucket.
			name:      "ten observations one slow",
			durations: append(repeat(time.Millisecond, 9), 80*time.Millisecond),
			p50:       1, p90: 1, p99: 100,
		},
		{
			// n=1: every quantile is the lone observation.
			name:      "single observation",
			durations: []time.Duration{80 * time.Millisecond},
			p50:       100, p90: 100, p99: 100,
		},
		{
			// n=2: p50→⌈1⌉=1 is the fast one, p90/p99→rank 2 the slow one.
			name:      "two observations",
			durations: []time.Duration{time.Millisecond, 80 * time.Millisecond},
			p50:       1, p90: 100, p99: 100,
		},
		{
			// n=4, evenly spread over four buckets: p50→rank 2, p90/p99→rank 4.
			name: "four distinct buckets",
			durations: []time.Duration{
				time.Millisecond, 5 * time.Millisecond,
				25 * time.Millisecond, 80 * time.Millisecond,
			},
			p50: 5, p90: 100, p99: 100,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var h histogram
			for _, d := range tc.durations {
				h.observe(d)
			}
			s := h.snapshot(false)
			if s.P50Ms != tc.p50 || s.P90Ms != tc.p90 || s.P99Ms != tc.p99 {
				t.Errorf("quantiles = (%v, %v, %v), want (%v, %v, %v)",
					s.P50Ms, s.P90Ms, s.P99Ms, tc.p50, tc.p90, tc.p99)
			}
		})
	}
}

func repeat(d time.Duration, n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = d
	}
	return out
}

// TestOverflowBucketJSON pins the wire format of the unbounded bucket:
// "le_ms" must read "+Inf", not a numeric 0 that a consumer would parse
// as "faster than 0 ms".
func TestOverflowBucketJSON(t *testing.T) {
	var h histogram
	h.observe(time.Minute)
	s := h.snapshot(true)
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"le_ms":"+Inf"`) {
		t.Errorf("overflow bucket JSON missing +Inf bound: %s", raw)
	}
	last := s.Buckets[len(s.Buckets)-1]
	if !last.Inf || last.Count != 1 {
		t.Errorf("overflow bucket = %+v, want Inf with count 1", last)
	}
	for _, b := range s.Buckets[:len(s.Buckets)-1] {
		if b.Inf {
			t.Errorf("bounded bucket marked Inf: %+v", b)
		}
	}
	// Round-trip: bounded buckets still decode as numbers.
	var decoded struct {
		Buckets []struct {
			LeMs  json.RawMessage `json:"le_ms"`
			Count uint64          `json:"count"`
		} `json:"buckets"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if got := string(decoded.Buckets[len(decoded.Buckets)-1].LeMs); got != `"+Inf"` {
		t.Errorf("decoded overflow bound = %s, want \"+Inf\"", got)
	}
}

// TestSnapshotBatchConsistency hammers observeBatch against Snapshot and
// asserts the invariants that torn loads used to break: the mean batch
// size can never exceed the max, and errors never exceed requests. Run
// under -race this also proves the counter group is properly synchronized.
func TestSnapshotBatchConsistency(t *testing.T) {
	m := NewMetrics()
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			m.requests.Add(1)
			// Batch sizes alternate 1 and 4; a torn read of batched vs
			// batches can fabricate a mean above the true max of 4.
			m.observeBatch(1+3*(i%2), 0)
			m.errors.Add(1)
		}
	}()
	for i := 0; i < 2000; i++ {
		s := m.Snapshot(CacheStats{}, false)
		if s.Batches > 0 && s.MeanBatchSize > float64(s.MaxBatchSize) {
			t.Errorf("torn batch counters: mean %v > max %d (batches %d)",
				s.MeanBatchSize, s.MaxBatchSize, s.Batches)
			break
		}
		if s.Errors > s.Requests {
			t.Errorf("torn request counters: errors %d > requests %d", s.Errors, s.Requests)
			break
		}
	}
	close(stop)
	writer.Wait()
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h histogram
	h.observe(time.Minute) // beyond the last bound
	s := h.snapshot(false)
	if s.Count != 1 || s.P50Ms != ms(time.Minute) {
		t.Errorf("overflow observation mishandled: %+v", s)
	}
}

func TestMetricsSnapshotCounters(t *testing.T) {
	m := NewMetrics()
	m.requests.Add(3)
	m.errors.Add(1)
	m.observeBatch(2, time.Millisecond)
	m.observeBatch(4, time.Millisecond)
	s := m.Snapshot(CacheStats{Hits: 5}, false)
	if s.Requests != 3 || s.Errors != 1 || s.Batches != 2 {
		t.Errorf("counters: %+v", s)
	}
	if s.MeanBatchSize != 3 || s.MaxBatchSize != 4 {
		t.Errorf("batch sizes: mean %v max %v", s.MeanBatchSize, s.MaxBatchSize)
	}
	if s.Cache.Hits != 5 {
		t.Errorf("cache stats not threaded through: %+v", s.Cache)
	}
}
