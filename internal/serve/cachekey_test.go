package serve

import (
	"testing"

	"mega/internal/graph"
	"mega/internal/models"
	"mega/internal/traverse"
)

// TestRepCacheKeyCoversOptions is the regression test for the
// topology-only cache-key bug: two different traverse/sparsify option
// sets over the SAME graph bytes must map to different cache keys, so one
// configuration can never be served a rep built under another.
func TestRepCacheKeyCoversOptions(t *testing.T) {
	g := graph.MustNew(8, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 4},
		{Src: 4, Dst: 5}, {Src: 5, Dst: 6}, {Src: 6, Dst: 7}, {Src: 7, Dst: 0},
		{Src: 0, Dst: 4}, {Src: 2, Dst: 6},
	}, false)
	fp := g.Fingerprint()

	optionSets := []traverse.Options{
		{EdgeCoverage: 1, Start: -1},
		{EdgeCoverage: 1, Start: -1, Window: 3},
		{EdgeCoverage: 1, Start: -1, DropEdges: 0.2, Seed: 7},
		{EdgeCoverage: 1, Start: -1, SparsifyFraction: 0.5, SparsifySeed: 7},
		{EdgeCoverage: 1, Start: -1, SparsifyFraction: 0.5, SparsifySeed: 8},
		{EdgeCoverage: 1, Start: -1, DropEdges: 0.2, Seed: 7, SparsifyFraction: 0.5, SparsifySeed: 7},
	}
	keys := make(map[RepKey]int, len(optionSets))
	for i, o := range optionSets {
		k := RepKey{Topo: fp, Opts: o.Digest()}
		if prev, dup := keys[k]; dup {
			t.Fatalf("option sets %d and %d share a cache key on the same topology", prev, i)
		}
		keys[k] = i
	}

	// All entries coexist in one cache: a Put under one option set never
	// overwrites or serves another's slot.
	c := NewRepCache(len(optionSets))
	preps := make([]*models.PreparedRep, len(optionSets))
	for i, o := range optionSets {
		preps[i] = &models.PreparedRep{}
		c.Put(RepKey{Topo: fp, Opts: o.Digest()}, preps[i])
	}
	if c.Len() != len(optionSets) {
		t.Fatalf("cache holds %d entries, want %d distinct per-option entries", c.Len(), len(optionSets))
	}
	for i, o := range optionSets {
		got, ok := c.Get(RepKey{Topo: fp, Opts: o.Digest()})
		if !ok || got != preps[i] {
			t.Fatalf("option set %d did not get back its own rep", i)
		}
	}
}

// TestServerRepKeyIncludesSparsify pins the server-level wiring: two
// servers differing only in SparsifyFraction compute different rep-cache
// keys for the same graph.
func TestServerRepKeyIncludesSparsify(t *testing.T) {
	plain := Options{Mega: models.MegaOptions{Traverse: traverse.Options{EdgeCoverage: 1, Start: -1}}}
	spars := Options{Mega: models.MegaOptions{Traverse: traverse.Options{
		EdgeCoverage: 1, Start: -1, SparsifyFraction: 0.5, SparsifySeed: 3}}}
	a := &Server{repOpts: plain.Mega.TraverseOptions().Digest()}
	b := &Server{repOpts: spars.Mega.TraverseOptions().Digest()}
	g := graph.MustNew(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}, false)
	if a.repKey(g.Fingerprint()) == b.repKey(g.Fingerprint()) {
		t.Fatal("servers with different sparsify options share a rep cache key")
	}
	if a.repKey(g.Fingerprint()) != a.repKey(g.Fingerprint()) {
		t.Fatal("rep key not deterministic")
	}
}
