package serve

import (
	"math"
	"net"
	"path/filepath"
	"testing"
	"time"

	"mega/internal/datasets"
	"mega/internal/dist"
	"mega/internal/models"
	"mega/internal/retry"
	"mega/internal/train"
)

// startDistWorkers boots n in-process shard workers (the same dist.Worker
// that cmd/megashard wraps) serving model over real TCP loopback listeners.
func startDistWorkers(t *testing.T, n int, model models.Model) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		w, err := dist.NewWorker(dist.WorkerOptions{Model: model, RecvTimeout: 2 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		go w.Serve(ln)
		t.Cleanup(func() { w.Close() })
	}
	return addrs
}

// distSuperOpts are test-speed supervisor knobs over the given fleet.
func distSuperOpts(addrs []string, jobWorkers int) *dist.SuperOptions {
	return &dist.SuperOptions{
		Workers:          addrs,
		GroupSize:        len(addrs),
		JobWorkers:       jobWorkers,
		HeartbeatEvery:   50 * time.Millisecond,
		HeartbeatTimeout: 500 * time.Millisecond,
		JobTimeout:       10 * time.Second,
		MaxAttempts:      3,
		Retry:            retry.Config{Attempts: 3, Base: 10 * time.Millisecond, Max: 50 * time.Millisecond},
	}
}

// distServer trains the same tiny GT as trainedServer, round-trips it
// through a checkpoint, points a worker fleet at the loaded model, and
// serves with Options.Dist — the full megatrain → megashard → megaserve
// pipeline in one process.
func distServer(t *testing.T, workers int, tweak func(*Options)) (*Server, *datasets.Dataset, models.Model) {
	t.Helper()
	ds := datasets.ZINC(datasets.Config{TrainSize: 16, ValSize: 12, TestSize: 1, Seed: 11})
	res, err := train.Run(ds, train.Options{
		Model: "GT", Engine: models.EngineMega,
		Dim: 16, Layers: 1, Heads: 2, BatchSize: 8, Epochs: 1, Seed: 11,
	})
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	path := filepath.Join(t.TempDir(), "gt.ckpt")
	if err := train.SaveCheckpointFile(path, res.Checkpoint(ds.Name), res.Model); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	meta, model, err := train.LoadCheckpointFile(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	addrs := startDistWorkers(t, workers, model)
	opts := Options{
		MaxBatch:             1,
		ShardVertexThreshold: 1,
		Dist:                 distSuperOpts(addrs, min(workers, 2)),
	}
	if tweak != nil {
		tweak(&opts)
	}
	s, err := New(model, meta, opts)
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	t.Cleanup(s.Close)
	return s, ds, model
}

// TestDistServingBitIdentical pins the tentpole serving contract: answers
// routed through the remote megashard fleet are bit-identical to the
// in-process forward of the same checkpoint.
func TestDistServingBitIdentical(t *testing.T) {
	s, ds, model := distServer(t, 2, nil)
	for _, inst := range ds.Val[:4] {
		pred, err := s.Predict(inst)
		if err != nil {
			t.Fatalf("predict: %v", err)
		}
		if pred.Degraded {
			t.Fatalf("live fleet must not degrade: %+v", pred)
		}
		want := directForward(t, model, models.EngineMega, inst, s.Meta().Config.Dim)
		for i := range want {
			if math.Float64bits(pred.Output[i]) != math.Float64bits(want[i]) {
				t.Fatalf("remote output[%d] = %v, direct = %v (must be bit-identical)",
					i, pred.Output[i], want[i])
			}
		}
	}
	snap := s.MetricsSnapshot(false)
	if snap.Dist == nil {
		t.Fatal("metrics snapshot missing dist stats")
	}
	if snap.Dist.Jobs == 0 {
		t.Errorf("no job reached the fleet: %+v", snap.Dist)
	}
	if snap.Dist.GroupDown != 0 {
		t.Errorf("group down with a live fleet: %+v", snap.Dist)
	}
	// Every batch either ran remotely (counted as a sharded batch with its
	// wire traffic) or was structurally unshardable and served exactly by
	// the local fallback, counted per-reason.
	if snap.ShardedBatches+snap.ShardFallbackReasons["unshardable"] < 4 {
		t.Errorf("batches unaccounted for: sharded %d, unshardable %d",
			snap.ShardedBatches, snap.ShardFallbackReasons["unshardable"])
	}
	if snap.ShardedBatches > 0 && (snap.ShardMessages == 0 || snap.ShardBytes == 0) {
		t.Errorf("remote batches recorded no wire traffic: %d msgs, %d bytes",
			snap.ShardMessages, snap.ShardBytes)
	}

	h := s.HealthSnapshot()
	if len(h.DistWorkers) != 2 || len(h.DistGroupsAlive) != 1 {
		t.Errorf("healthz fleet view = %d workers, %d groups; want 2, 1",
			len(h.DistWorkers), len(h.DistGroupsAlive))
	}
	if h.Status != "ok" {
		t.Errorf("healthy fleet, status %q", h.Status)
	}
}

// TestDistUnshardableServesExactLocal pins the middle rung of the failover
// ladder: a graph whose path cannot be cut into 8 µchunks is a property of
// the request, not the fleet — it is served exactly by the local MEGA
// forward, never degraded, and counted under its own fallback reason.
func TestDistUnshardableServesExactLocal(t *testing.T) {
	s, _, model := distServer(t, 1, func(o *Options) {
		o.Dist.JobWorkers = 1
	})
	tri, err := graphFromPairs(3, [][2]int32{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	inst := datasets.Instance{G: tri, NodeFeat: make([]int32, 3), EdgeFeat: make([]int32, 3)}
	pred, err := s.Predict(inst)
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	if pred.Degraded {
		t.Fatalf("unshardable must stay exact, not degraded: %+v", pred)
	}
	want := directForward(t, model, models.EngineMega, inst, s.Meta().Config.Dim)
	for i := range want {
		if math.Float64bits(pred.Output[i]) != math.Float64bits(want[i]) {
			t.Fatalf("local fallback output[%d] = %v, direct = %v", i, pred.Output[i], want[i])
		}
	}
	snap := s.MetricsSnapshot(false)
	if snap.ShardFallbackReasons["unshardable"] < 1 {
		t.Errorf("shard_fallback_reasons = %v, want unshardable >= 1", snap.ShardFallbackReasons)
	}
	if s.BreakerState() != BreakerClosed || s.distBreaker.State() != BreakerClosed {
		t.Error("unshardable request must not count against any breaker")
	}
}

// TestDistGroupDownDegradesToDGL pins the last rung: when the whole replica
// group is unreachable, eligible batches degrade to the DGL fallback engine
// — a marked, exact-for-that-engine answer, never a lost response — and the
// dist breaker plus /healthz surface the outage.
func TestDistGroupDownDegradesToDGL(t *testing.T) {
	// A listener opened and immediately closed yields an address nothing
	// serves on.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	s, ds, _ := distServer(t, 1, func(o *Options) {
		o.Dist = distSuperOpts([]string{deadAddr}, 1)
		o.Dist.MaxAttempts = 1
		o.Dist.Retry = retry.Config{Attempts: 1, Base: 5 * time.Millisecond, Max: 5 * time.Millisecond}
		o.BreakerThreshold = 1
	})
	pred, err := s.Predict(ds.Val[0])
	if err != nil {
		t.Fatalf("group down must degrade, not fail: %v", err)
	}
	if !pred.Degraded {
		t.Fatalf("dead fleet answer not marked degraded: %+v", pred)
	}
	snap := s.MetricsSnapshot(false)
	if snap.ShardFallbackReasons["group_down"] < 1 {
		t.Errorf("shard_fallback_reasons = %v, want group_down >= 1", snap.ShardFallbackReasons)
	}
	if snap.Dist == nil || snap.Dist.GroupDown == 0 {
		t.Errorf("dist stats missed the group-down: %+v", snap.Dist)
	}

	// BreakerThreshold 1: the first group failure opens the dist breaker,
	// so the next eligible batch short-circuits to the degrade without
	// stalling on fleet timeouts, and /healthz reports the outage.
	if s.distBreaker.State() != BreakerOpen {
		t.Errorf("dist breaker = %v after group failure, want open", s.distBreaker.State())
	}
	pred, err = s.Predict(ds.Val[1])
	if err != nil || !pred.Degraded {
		t.Fatalf("breaker-open batch: pred %+v, err %v (want degraded answer)", pred, err)
	}
	if h := s.HealthSnapshot(); h.Status != "degraded" {
		t.Errorf("healthz status %q with the fleet down, want degraded", h.Status)
	}
}

// TestDistOptionsRejected pins constructor-time validation: distributed
// serving is a MEGA/GT construct and refuses anything else outright.
func TestDistOptionsRejected(t *testing.T) {
	bad := Options{Engine: models.EngineDGL, Dist: &dist.SuperOptions{Workers: []string{"x"}}}
	if err := bad.Validate(); err == nil {
		t.Error("DGL engine with Dist accepted")
	}
	cfg := models.Config{Dim: 8, Layers: 1, Heads: 2, NodeTypes: 4, EdgeTypes: 2, OutDim: 1, Seed: 1}
	gat := models.NewGAT(cfg)
	_, err := New(gat, train.Checkpoint{Model: "GAT", Config: cfg, Task: datasets.TaskRegression},
		Options{Dist: &dist.SuperOptions{Workers: []string{"127.0.0.1:1"}}})
	if err == nil {
		t.Error("non-GT model with Dist accepted")
	}
}
