package serve

import (
	"sync"
	"time"

	"mega/internal/retry"
)

// Circuit breaker around MEGA preprocessing. PrepareMega is the one
// serving-path stage with real failure surface (traversal of hostile
// topologies, injected faults, future remote preprocessors); when it
// fails repeatedly the breaker opens and requests skip straight to the
// degraded fallback engine instead of burning a doomed traversal per
// request. After a cooldown the breaker half-opens and lets exactly one
// probe attempt through; success closes it, failure re-opens it with the
// next backoff step (retry.Backoff, so repeated trips space their probes
// exponentially up to a cap).
//
// State machine:
//
//	closed --threshold consecutive failures--> open
//	open --cooldown elapsed--> half-open (one probe allowed)
//	half-open --probe success--> closed
//	half-open --probe failure--> open (longer cooldown)

// BreakerState names the breaker's position for /healthz and /metrics.
type BreakerState string

const (
	BreakerClosed   BreakerState = "closed"
	BreakerOpen     BreakerState = "open"
	BreakerHalfOpen BreakerState = "half-open"
)

type breaker struct {
	mu sync.Mutex
	// threshold is the consecutive-failure count that trips the breaker.
	threshold int
	// backoff shapes successive open windows: open #k lasts
	// retry.Backoff(k, backoff).
	backoff retry.Config

	state       BreakerState
	consecutive int       // failures since the last success (closed state)
	opens       int       // consecutive opens without an intervening close
	reopenAt    time.Time // when the open state half-opens
	probing     bool      // a half-open probe is in flight

	now func() time.Time // injectable clock for tests
	// onTransition observes every state change (metrics).
	onTransition func(from, to BreakerState)
}

func newBreaker(threshold int, cooldown time.Duration, onTransition func(from, to BreakerState)) *breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 500 * time.Millisecond
	}
	return &breaker{
		threshold: threshold,
		backoff: retry.Config{
			Attempts: 1, // unused by Backoff; Do is never called here
			Base:     cooldown,
			Max:      60 * cooldown,
			Jitter:   0.1,
			Seed:     1,
		},
		state:        BreakerClosed,
		now:          time.Now,
		onTransition: onTransition,
	}
}

func (b *breaker) transition(to BreakerState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if b.onTransition != nil {
		b.onTransition(from, to)
	}
}

// State reports the current state, promoting open→half-open if the
// cooldown has elapsed (so observers see the truth even with no traffic).
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && !b.now().Before(b.reopenAt) {
		b.transition(BreakerHalfOpen)
		b.probing = false
	}
	return b.state
}

// allow reports whether a preprocessing attempt may proceed. In half-open
// it admits exactly one probe at a time; callers that get true must report
// the outcome via success or failure.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Before(b.reopenAt) {
			return false
		}
		b.transition(BreakerHalfOpen)
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// success records a completed preprocessing attempt.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive = 0
	b.probing = false
	if b.state != BreakerClosed {
		b.opens = 0
		b.transition(BreakerClosed)
	}
}

// failure records a failed preprocessing attempt, tripping or re-opening
// the breaker as the state machine dictates.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	switch b.state {
	case BreakerClosed:
		b.consecutive++
		if b.consecutive >= b.threshold {
			b.open()
		}
	case BreakerHalfOpen:
		b.open()
	case BreakerOpen:
		// Late failure from an attempt admitted before the trip; the
		// breaker is already open.
	}
}

// open (re)enters the open state with the next backoff window. Caller
// holds the lock.
func (b *breaker) open() {
	b.opens++
	b.consecutive = 0
	b.reopenAt = b.now().Add(retry.Backoff(b.opens, b.backoff))
	b.transition(BreakerOpen)
}
