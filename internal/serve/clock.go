package serve

import (
	"sort"
	"sync"
	"time"
)

// Clock abstracts the micro-batcher's view of time so tests can drive
// MaxWait deterministically instead of sleeping real wall time. Production
// servers use the wall clock (the zero Options); tests inject a
// ManualClock and advance it explicitly.
type Clock interface {
	Now() time.Time
	// NewTimer arms a one-shot timer that delivers on C after d has
	// elapsed on this clock.
	NewTimer(d time.Duration) Timer
}

// Timer mirrors time.Timer's channel semantics (go.mod pins go1.22: the
// fire channel is buffered, Stop reports false once the timer has fired,
// and a fired-but-unreceived value must be drained before Reset).
type Timer interface {
	C() <-chan time.Time
	Stop() bool
	Reset(d time.Duration) bool
}

// wallClock is the production Clock: plain time.Now / time.NewTimer.
type wallClock struct{}

func (wallClock) Now() time.Time                 { return time.Now() }
func (wallClock) NewTimer(d time.Duration) Timer { return wallTimer{time.NewTimer(d)} }

type wallTimer struct{ t *time.Timer }

func (w wallTimer) C() <-chan time.Time        { return w.t.C }
func (w wallTimer) Stop() bool                 { return w.t.Stop() }
func (w wallTimer) Reset(d time.Duration) bool { return w.t.Reset(d) }

// ManualClock is a deterministic Clock for tests: time only moves when
// Advance is called, and timers fire synchronously inside Advance the
// moment their deadline is reached. Safe for concurrent use.
type ManualClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*manualTimer
}

// NewManualClock starts a manual clock at the given instant.
func NewManualClock(start time.Time) *ManualClock {
	return &ManualClock{now: start}
}

// Now reports the clock's current instant.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d, firing every armed timer whose
// deadline is reached, in deadline order.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	target := c.now.Add(d)
	// Fire timers in deadline order so two timers armed for different
	// deadlines inside one Advance observe a consistent ordering.
	due := make([]*manualTimer, 0, len(c.timers))
	for _, t := range c.timers {
		if t.armed && !t.deadline.After(target) {
			due = append(due, t)
		}
	}
	sort.Slice(due, func(i, j int) bool { return due[i].deadline.Before(due[j].deadline) })
	for _, t := range due {
		t.armed = false
		t.fired = true
		// Buffered(1), mirroring time.Timer: the send never blocks and a
		// fired-but-unreceived value stays drainable.
		select {
		case t.ch <- t.deadline:
		default:
		}
	}
	c.now = target
	c.mu.Unlock()
}

// Armed counts timers currently waiting for a deadline. Tests use it to
// synchronise with a goroutine that arms a timer asynchronously before
// advancing the clock.
func (c *ManualClock) Armed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, t := range c.timers {
		if t.armed {
			n++
		}
	}
	return n
}

// NewTimer arms a one-shot timer d ahead of the clock's current instant.
func (c *ManualClock) NewTimer(d time.Duration) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &manualTimer{
		clock:    c,
		ch:       make(chan time.Time, 1),
		deadline: c.now.Add(d),
		armed:    true,
	}
	c.timers = append(c.timers, t)
	return t
}

type manualTimer struct {
	clock    *ManualClock
	ch       chan time.Time
	deadline time.Time
	armed    bool
	fired    bool
}

func (t *manualTimer) C() <-chan time.Time { return t.ch }

// Stop disarms the timer, reporting whether it was still pending — false
// once fired, matching time.Timer, so the batcher's drain idiom works
// against both clocks.
func (t *manualTimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	was := t.armed
	t.armed = false
	return was
}

// Reset re-arms the timer d ahead of the clock's current instant.
func (t *manualTimer) Reset(d time.Duration) bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	was := t.armed
	t.deadline = t.clock.now.Add(d)
	t.armed = true
	t.fired = false
	return was
}
