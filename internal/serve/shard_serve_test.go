package serve

import (
	"math"
	"testing"

	"mega/internal/datasets"
	"mega/internal/models"
)

// TestShardedServingMatchesUnsharded pins the serving-layer contract of
// the shard engine: predictions from a sharded forward are bit-identical
// to the single-engine forward (checkpoints round-trip parameters
// bit-exactly, so the direct model is a valid reference), and the shard
// metrics record the batch and its exchange traffic.
func TestShardedServingMatchesUnsharded(t *testing.T) {
	s, ds, model := trainedServer(t, Options{
		MaxBatch: 1, ShardWorkers: 2, ShardVertexThreshold: 1,
	})

	shardedBatches := 0
	for _, inst := range ds.Val[:4] {
		pred, err := s.Predict(inst)
		if err != nil {
			t.Fatalf("predict: %v", err)
		}
		want := directForward(t, model, models.EngineMega, inst, s.Meta().Config.Dim)
		for i := range want {
			if math.Float64bits(pred.Output[i]) != math.Float64bits(want[i]) {
				t.Fatalf("sharded output[%d] = %v, direct = %v (must be bit-identical)",
					i, pred.Output[i], want[i])
			}
		}
		shardedBatches++
	}

	snap := s.metrics.Snapshot(s.CacheStats(), false)
	// Every batch was over the 1-vertex threshold; the only legitimate
	// bail-out is a path too short to cut into 8 µchunks, which counts as
	// a fallback — so sharded + fallbacks must cover every batch, and at
	// least one molecule must genuinely have sharded.
	if snap.ShardedBatches+snap.ShardFallbacks != uint64(shardedBatches) {
		t.Errorf("sharded %d + fallbacks %d, want %d batches covered",
			snap.ShardedBatches, snap.ShardFallbacks, shardedBatches)
	}
	if snap.ShardedBatches == 0 {
		t.Fatal("no batch took the shard path")
	}
	if snap.ShardMessages == 0 || snap.ShardBytes == 0 {
		t.Errorf("sharded batches recorded no traffic: %d msgs, %d bytes",
			snap.ShardMessages, snap.ShardBytes)
	}
	if len(snap.ShardWorkerMs) != 2 {
		t.Errorf("shard worker timings = %v, want one entry per worker", snap.ShardWorkerMs)
	}
}

// TestShardFallbackCounterOnShortPath forces the unshardable case: a
// triangle's 3-row path cannot be cut into 8 µchunks, so a shard-eligible
// batch over it must fall back to the monolithic engine and count a
// shard_fallbacks on /metrics — the serving mirror of
// train.Result.ShardFallbacks.
func TestShardFallbackCounterOnShortPath(t *testing.T) {
	s, _, _ := trainedServer(t, Options{
		MaxBatch: 1, ShardWorkers: 2, ShardVertexThreshold: 1,
	})
	tri, err := graphFromPairs(3, [][2]int32{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	inst := datasets.Instance{
		G:        tri,
		NodeFeat: make([]int32, 3),
		EdgeFeat: make([]int32, 3),
	}
	pred, err := s.Predict(inst)
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	if len(pred.Output) == 0 || pred.Degraded {
		t.Fatalf("fallback must still answer exactly: %+v", pred)
	}
	snap := s.MetricsSnapshot(false)
	if snap.ShardFallbacks < 1 {
		t.Errorf("shard_fallbacks = %d, want >= 1", snap.ShardFallbacks)
	}
	if snap.ShardedBatches != 0 {
		t.Errorf("a 3-row path cannot shard, yet sharded_batches = %d", snap.ShardedBatches)
	}
}

// TestShardVertexThresholdGates verifies small batches bypass the shard
// engine entirely when under the vertex threshold.
func TestShardVertexThresholdGates(t *testing.T) {
	s, ds, _ := trainedServer(t, Options{
		MaxBatch: 1, ShardWorkers: 2, ShardVertexThreshold: 1 << 20,
	})
	if _, err := s.Predict(ds.Val[0]); err != nil {
		t.Fatalf("predict: %v", err)
	}
	snap := s.metrics.Snapshot(s.CacheStats(), false)
	if snap.ShardedBatches != 0 || snap.ShardFallbacks != 0 {
		t.Errorf("under-threshold batch touched the shard path: %+v", snap)
	}
}
