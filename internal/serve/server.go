package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mega/internal/compute"
	"mega/internal/datasets"
	"mega/internal/dist"
	"mega/internal/dynamic"
	"mega/internal/faults"
	"mega/internal/graph"
	"mega/internal/models"
	"mega/internal/tensor"
	"mega/internal/train"
	"mega/internal/traverse"
)

// Options tunes the inference service.
type Options struct {
	// Engine selects the attention engine (default EngineMega — the
	// engine whose preprocessing the cache amortises).
	Engine models.EngineKind
	// MaxBatch caps how many requests are packed into one block-diagonal
	// forward pass (default 16).
	MaxBatch int
	// MaxWait bounds how long an open batch waits for company before it
	// is flushed (default 2ms).
	MaxWait time.Duration
	// Workers sizes the forward-pass worker pool (default GOMAXPROCS).
	Workers int
	// ComputeBudget caps the compute worker pool (internal/compute) while
	// this server runs, so intra-op parallelism composes with the
	// request-level Workers without oversubscribing the machine. The
	// default is max(1, NumCPU − Workers + 1): each forward pass runs on
	// its worker goroutine plus up to ComputeBudget−1 helpers, keeping
	// Workers + ComputeBudget − 1 ≤ NumCPU. The budget is process-global
	// (it calls compute.SetMaxThreads), so with multiple servers in one
	// process the last one constructed wins.
	ComputeBudget int
	// CacheCapacity bounds the path-representation LRU in entries
	// (default 4096; <=0 after explicit set disables caching).
	CacheCapacity int
	// QueueDepth is the pending-request channel capacity; when it is
	// full, new requests are shed with ErrOverloaded instead of blocking
	// (default 256).
	QueueDepth int
	// DefaultTimeout is the per-request deadline applied when the
	// caller's context carries none (0 = no default deadline).
	DefaultTimeout time.Duration
	// MaxTimeout caps every request deadline, including per-request
	// overrides from the wire (0 = uncapped).
	MaxTimeout time.Duration
	// BreakerThreshold is the consecutive MEGA-preprocessing failures
	// that trip the circuit breaker to the fallback engine (default 5).
	BreakerThreshold int
	// BreakerCooldown is the first open window before a half-open probe;
	// successive trips back off exponentially from it (default 500ms).
	BreakerCooldown time.Duration
	// ShutdownGrace bounds how long Close/Shutdown drains queued and
	// in-flight requests before failing the rest with ErrShuttingDown
	// (default 5s).
	ShutdownGrace time.Duration
	// Mega configures traversal options for the MEGA engine (including
	// effective-resistance sparsification via SparsifyFraction). Options
	// are per-server, not per-request; cache keys cover both topology and
	// a digest of these options, so servers with different preprocessing
	// can never alias each other's reps.
	Mega models.MegaOptions
	// ShardWorkers enables the shard-parallel execution engine for large
	// MEGA batches: when > 1 (it must divide 8) and the batch's total
	// vertex count reaches ShardVertexThreshold, the forward pass runs
	// across this many shard workers instead of one monolithic pass.
	// Outputs are bit-identical to the single-engine pass (GT checkpoints
	// under the MEGA engine only), so the switch is purely an intra-batch
	// parallelism trade. Default 0 = disabled.
	ShardWorkers int
	// ShardVertexThreshold is the minimum total vertices across a batch
	// before sharding kicks in; below it the per-batch worker handoff
	// costs more than it saves. Default 256 when ShardWorkers > 1.
	ShardVertexThreshold int
	// Dist enables distributed shard serving: when non-nil, shard-eligible
	// MEGA batches (GT checkpoints, total vertices ≥ ShardVertexThreshold)
	// are dispatched to the megashard worker fleet it describes through a
	// dist.Supervisor — consistent-hash replica routing, heartbeats, and
	// transparent failover to peer replicas. Answers stay bit-identical to
	// the in-process forward. Only when a whole replica group is down does
	// the dist circuit breaker degrade those batches to the DGL fallback
	// engine. Takes precedence over the in-process ShardWorkers engine for
	// eligible batches.
	Dist *dist.SuperOptions
	// MutationSessions bounds the POST /update session pool: how many
	// mutable graph lineages (live maintainers with WL trackers) stay
	// resident between updates. Evicted lineages re-adopt from their last
	// published cache snapshot on the next update (default 64).
	MutationSessions int
	// MutationPolicy tunes the patch-vs-rebuild decision for incremental
	// repairs (zero value = the dynamic package defaults).
	MutationPolicy dynamic.Policy
	// Clock drives the micro-batcher's MaxWait timing. nil means the wall
	// clock; tests inject a ManualClock to make flush timing deterministic.
	Clock Clock
	// Precision selects the inference arithmetic: PrecisionF64 (default)
	// runs the training-grade float64 forward; PrecisionF32 serves MEGA
	// batches through the frozen float32 fast path (checkpoint parameters
	// downcast once at load, head-major fused kernels, no autograd tape).
	// Degraded (fallback-engine) answers always run float64 regardless.
	// Only models with a float32 path (GT, GAT) accept PrecisionF32.
	Precision string

	// cacheSet marks CacheCapacity as deliberately chosen, letting 0 mean
	// "disabled" rather than "default".
	cacheSet bool
}

// Precision values for Options.Precision.
const (
	// PrecisionF64 serves with the float64 training arithmetic.
	PrecisionF64 = "f64"
	// PrecisionF32 serves MEGA batches with the float32 fast path.
	PrecisionF32 = "f32"
)

// ErrBadOptions rejects an Options value New cannot honour. The
// constructor refuses outright instead of silently falling back to a
// default — a misconfigured knob that quietly serves with different
// batching or no sharding would invalidate every capacity number measured
// against it.
var ErrBadOptions = errors.New("serve: invalid options")

// Validate checks the knobs that used to fall back silently. MaxWait < 0
// has no meaning (0 selects the default); ShardWorkers must divide the 8
// canonical path µchunks (2, 4, or 8 — the shard engine's invariant), with
// <= 1 meaning disabled.
func (o Options) Validate() error {
	if o.MaxWait < 0 {
		return fmt.Errorf("%w: MaxWait %v is negative (0 selects the default)", ErrBadOptions, o.MaxWait)
	}
	if o.ShardWorkers < 0 {
		return fmt.Errorf("%w: ShardWorkers %d is negative (0 disables sharding)", ErrBadOptions, o.ShardWorkers)
	}
	if o.ShardWorkers > 1 && 8%o.ShardWorkers != 0 {
		return fmt.Errorf("%w: ShardWorkers %d does not divide the 8 path µchunks (want 2, 4, or 8)", ErrBadOptions, o.ShardWorkers)
	}
	switch o.Precision {
	case "", PrecisionF64, PrecisionF32:
	default:
		return fmt.Errorf("%w: Precision %q (want %q or %q)", ErrBadOptions, o.Precision, PrecisionF64, PrecisionF32)
	}
	if o.Dist != nil && o.Engine != 0 && o.Engine != models.EngineMega {
		return fmt.Errorf("%w: distributed shard serving requires the MEGA engine", ErrBadOptions)
	}
	if f := o.Mega.TraverseOptions().SparsifyFraction; f < 0 || f > 1 {
		return fmt.Errorf("%w: SparsifyFraction %v outside [0, 1]", ErrBadOptions, f)
	}
	return nil
}

// WithCacheCapacity returns o with an explicit cache bound; use capacity 0
// to disable caching outright.
func (o Options) WithCacheCapacity(capacity int) Options {
	o.CacheCapacity = capacity
	o.cacheSet = true
	return o
}

func (o Options) withDefaults() Options {
	if o.Engine == 0 {
		o.Engine = models.EngineMega
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 16
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 2 * time.Millisecond
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.ComputeBudget <= 0 {
		o.ComputeBudget = runtime.NumCPU() - o.Workers + 1
		if o.ComputeBudget < 1 {
			o.ComputeBudget = 1
		}
	}
	if o.CacheCapacity == 0 && !o.cacheSet {
		o.CacheCapacity = 4096
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 500 * time.Millisecond
	}
	if o.ShutdownGrace <= 0 {
		o.ShutdownGrace = 5 * time.Second
	}
	if (o.ShardWorkers > 1 || o.Dist != nil) && o.ShardVertexThreshold <= 0 {
		o.ShardVertexThreshold = 256
	}
	if o.MutationSessions <= 0 {
		o.MutationSessions = 64
	}
	if o.Precision == "" {
		o.Precision = PrecisionF64
	}
	return o
}

// Prediction is the service's answer for one graph.
type Prediction struct {
	// Output is the model's raw output row: one scalar for regression,
	// class logits for classification.
	Output []float64 `json:"output"`
	// Label is the argmax class (classification checkpoints only).
	Label *int `json:"label,omitempty"`
	// CacheHit reports whether preprocessing was served from the
	// path-representation cache.
	CacheHit bool `json:"cache_hit"`
	// Degraded reports that MEGA preprocessing was unavailable (failure
	// or open circuit breaker) and the prediction came from the fallback
	// engine instead. Degraded answers are exact for that engine — a
	// different attention layout, not an approximation — but may differ
	// numerically from the MEGA-engine answer on graphs with revisits.
	Degraded bool `json:"degraded,omitempty"`
	// Precision is "f32" when the answer came from the float32 fast path;
	// omitted for float64 answers (including every degraded answer).
	Precision string `json:"precision,omitempty"`
}

// Server is a concurrent batched inference service over one trained model.
// The model's parameters are read-only after load, so any number of
// workers may run Forward concurrently.
type Server struct {
	model models.Model
	// modelF32 is the frozen float32 twin of model, non-nil only under
	// Options.Precision == PrecisionF32. Non-degraded MEGA batches run
	// through it; everything else (degraded fallback, non-MEGA engines)
	// stays on the float64 model.
	modelF32 models.ModelF32
	meta     train.Checkpoint
	opts     Options
	cache    *RepCache
	// repOpts is the digest of the effective traverse/sparsify options,
	// computed once; combined with each graph's topology fingerprint it
	// forms the rep-cache key.
	repOpts  traverse.OptionsDigest
	metrics  *Metrics
	batcher  *batcher
	breaker  *breaker
	mutators *mutatorPool
	// super dispatches shard-eligible batches to the megashard worker
	// fleet (Options.Dist); nil when distributed serving is disabled.
	super *dist.Supervisor
	// distBreaker trips after consecutive whole-group failures on the
	// distributed path, short-circuiting eligible batches straight to the
	// DGL degrade instead of stalling each one on fleet timeouts. A
	// structural ErrUnshardable never counts against it — that is a
	// property of the graph, not the fleet.
	distBreaker *breaker
	// arena pools fused-attention scratch across batches; shared by all
	// workers (Arena is concurrency-safe), so steady-state serving stops
	// allocating in the attention path.
	arena *tensor.Arena

	mu     sync.RWMutex // guards closed vs. in-flight enqueues
	closed bool
	wg     sync.WaitGroup // dispatcher + workers

	// aborting flips when the shutdown grace window lapses: workers stop
	// forwarding and fail remaining requests with ErrShuttingDown.
	aborting atomic.Bool
	// graceExceeded records that Shutdown had to abort queued requests.
	graceExceeded atomic.Bool
	shutdownOnce  sync.Once
	shutdownDone  chan struct{}
}

// Service errors. Every request resolves to a prediction or exactly one of
// these (or a context error for deadline/cancellation) — the "no lost
// responses" contract the chaos harness pins.
var (
	ErrClosed          = errors.New("serve: server is closed")
	ErrInvalidInstance = errors.New("serve: invalid instance")
	// ErrOverloaded sheds a request because the admission queue is full;
	// HTTP maps it to 429 with Retry-After.
	ErrOverloaded = errors.New("serve: overloaded, request shed")
	// ErrShuttingDown fails requests still queued when the shutdown grace
	// window lapses; HTTP maps it to 503.
	ErrShuttingDown = errors.New("serve: shutting down")
	// ErrWorkerCrashed wraps a worker panic that escaped the guarded
	// forward pass; the worker is replaced automatically.
	ErrWorkerCrashed = errors.New("serve: worker crashed")
)

// New starts the dispatcher and worker pool around a loaded model. meta
// must describe model (its Config validates request vocabularies and sets
// the output interpretation). Invalid knob combinations are rejected with
// ErrBadOptions rather than silently adjusted (see Options.Validate).
func New(model models.Model, meta train.Checkpoint, opts Options) (*Server, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	var modelF32 models.ModelF32
	if opts.Precision == PrecisionF32 {
		var err error
		if modelF32, err = models.PrepareF32(model); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadOptions, err)
		}
	}
	var super *dist.Supervisor
	if opts.Dist != nil {
		if _, ok := model.(*models.GT); !ok {
			return nil, fmt.Errorf("%w: distributed shard serving requires a GT checkpoint (got %s)", ErrBadOptions, meta.Model)
		}
		var err error
		if super, err = dist.NewSupervisor(*opts.Dist); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadOptions, err)
		}
	}
	compute.SetMaxThreads(opts.ComputeBudget)
	s := &Server{
		model:        model,
		modelF32:     modelF32,
		meta:         meta,
		opts:         opts,
		cache:        NewRepCache(opts.CacheCapacity),
		repOpts:      opts.Mega.TraverseOptions().Digest(),
		metrics:      NewMetrics(),
		batcher:      newBatcher(opts.MaxBatch, opts.MaxWait, opts.QueueDepth, opts.Clock),
		mutators:     newMutatorPool(opts.MutationSessions),
		super:        super,
		arena:        tensor.NewArena(),
		shutdownDone: make(chan struct{}),
	}
	s.breaker = newBreaker(opts.BreakerThreshold, opts.BreakerCooldown, func(from, to BreakerState) {
		s.metrics.breakerTransitions.Add(1)
		if to == BreakerOpen {
			s.metrics.breakerOpens.Add(1)
		}
	})
	s.distBreaker = newBreaker(opts.BreakerThreshold, opts.BreakerCooldown, func(from, to BreakerState) {
		s.metrics.breakerTransitions.Add(1)
		if to == BreakerOpen {
			s.metrics.breakerOpens.Add(1)
		}
	})
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.batcher.run()
	}()
	for i := 0; i < opts.Workers; i++ {
		s.startWorker()
	}
	return s, nil
}

// startWorker launches one forward-pass worker. A panic that escapes the
// guarded forward (e.g. raised outside the recover, or during dispatch)
// fails the in-flight batch with ErrWorkerCrashed and spawns a
// replacement, so the pool never silently shrinks.
func (s *Server) startWorker() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		var cur []*pending
		defer func() {
			if r := recover(); r != nil {
				for _, p := range cur {
					p.finish(outcome{err: fmt.Errorf("%w: %v", ErrWorkerCrashed, r)})
				}
				s.metrics.workerRestarts.Add(1)
				// Replace before this goroutine exits; wg.Add happens
				// while our own slot is still held, so Close's Wait
				// cannot observe a zero in between.
				s.startWorker()
			}
		}()
		for batch := range s.batcher.out {
			cur = batch
			s.runBatch(batch)
			cur = nil
		}
	}()
}

// NewFromCheckpointFile loads a megatrain checkpoint and serves it.
func NewFromCheckpointFile(path string, opts Options) (*Server, error) {
	meta, model, err := train.LoadCheckpointFile(path)
	if err != nil {
		return nil, err
	}
	return New(model, meta, opts)
}

// NewFromCheckpointDir serves the newest good checkpoint in a megatrain
// checkpoint directory (train.Options.CheckpointDir), quarantining corrupt
// files along the way; the number of quarantined files is surfaced on
// /metrics as checkpoint_recoveries.
func NewFromCheckpointDir(dir string, opts Options) (*Server, error) {
	meta, model, rep, err := train.LoadLatestCheckpoint(dir)
	if err != nil {
		return nil, err
	}
	s, err := New(model, meta, opts)
	if err != nil {
		return nil, err
	}
	s.metrics.checkpointRecoveries.Add(uint64(len(rep.Quarantined)))
	return s, nil
}

// EffectiveOptions reports the options the server actually runs with,
// after defaulting — the knob record a capacity benchmark should attribute
// its numbers to.
func (s *Server) EffectiveOptions() Options { return s.opts }

// Meta returns the checkpoint description being served.
func (s *Server) Meta() train.Checkpoint { return s.meta }

// CacheStats snapshots the path-representation cache counters.
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// BreakerState reports the preprocessing circuit breaker's position.
func (s *Server) BreakerState() BreakerState { return s.breaker.State() }

// MetricsSnapshot freezes the service counters and latency histograms.
func (s *Server) MetricsSnapshot(withBuckets bool) Snapshot {
	snap := s.metrics.Snapshot(s.cache.Stats(), withBuckets)
	snap.Arena = s.arena.Stats()
	snap.Precision = s.opts.Precision
	snap.MutationSessions = s.mutators.Len()
	snap.Breaker = string(s.breaker.State())
	snap.QueueDepth = len(s.batcher.in)
	snap.QueueCapacity = cap(s.batcher.in)
	snap.Workers = s.opts.Workers
	if s.super != nil {
		st := s.super.Stats()
		snap.Dist = &st
	}
	return snap
}

// Close shuts the server down with the configured grace period
// (Options.ShutdownGrace). It is idempotent.
func (s *Server) Close() { s.Shutdown(context.Background()) }

// Shutdown stops accepting requests and drains queued and in-flight work.
// Requests still unanswered when the grace window (Options.ShutdownGrace,
// or ctx, whichever ends first) lapses are failed with ErrShuttingDown —
// bounded, and never silent. It returns ErrShuttingDown if any requests
// were aborted, nil on a clean drain. Idempotent; concurrent callers all
// block until shutdown completes.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutdownOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		close(s.batcher.in)
		s.mu.Unlock()

		drained := make(chan struct{})
		go func() {
			s.wg.Wait()
			close(drained)
		}()
		timer := time.NewTimer(s.opts.ShutdownGrace)
		defer timer.Stop()
		select {
		case <-drained:
		case <-timer.C:
			s.abortDrain(drained)
		case <-ctx.Done():
			s.abortDrain(drained)
		}
		if s.super != nil {
			s.super.Close()
		}
		close(s.shutdownDone)
	})
	<-s.shutdownDone
	if s.graceExceeded.Load() {
		return ErrShuttingDown
	}
	return nil
}

// abortDrain flips workers into fail-fast mode and waits for the pipeline
// to finish flushing typed errors to the remaining requests.
func (s *Server) abortDrain(drained <-chan struct{}) {
	s.graceExceeded.Store(true)
	s.aborting.Store(true)
	<-drained
}

// Predict runs one graph through the service with no caller context; the
// server's DefaultTimeout still applies. Safe for arbitrary concurrent
// callers.
func (s *Server) Predict(inst datasets.Instance) (Prediction, error) {
	return s.PredictCtx(context.Background(), inst)
}

// PredictCtx runs one graph through the service: validate, apply the
// request deadline, preprocess (cache hit, fresh traversal, or degraded
// fallback), enqueue into the micro-batcher with load shedding, and wait
// for the batched forward pass or the context, whichever finishes first.
func (s *Server) PredictCtx(ctx context.Context, inst datasets.Instance) (Prediction, error) {
	s.metrics.requests.Add(1)
	start := time.Now()
	if err := s.validate(inst); err != nil {
		s.metrics.errors.Add(1)
		return Prediction{}, err
	}
	ctx, cancel := s.requestContext(ctx)
	defer cancel()

	p := &pending{ctx: ctx, inst: inst, enqueued: start, done: make(chan outcome, 1)}
	if s.opts.Engine == models.EngineMega {
		s.prepare(p)
	}

	// Admission: never block on a full queue — shed with a typed error
	// the client can back off on.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		s.metrics.errors.Add(1)
		return Prediction{}, ErrClosed
	}
	select {
	case s.batcher.in <- p:
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		s.metrics.shed.Add(1)
		s.metrics.errors.Add(1)
		return Prediction{}, ErrOverloaded
	}

	select {
	case out := <-p.done:
		s.metrics.total.observe(time.Since(start))
		if out.err != nil {
			s.metrics.errors.Add(1)
			return Prediction{}, out.err
		}
		return out.pred, nil
	case <-ctx.Done():
		// The worker may still answer into the buffered channel; the
		// caller stops waiting now. Workers drop expired requests before
		// forwarding, so an abandoned request does not burn a pass.
		s.metrics.errors.Add(1)
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			s.metrics.deadlineExceeded.Add(1)
		} else {
			s.metrics.canceled.Add(1)
		}
		return Prediction{}, fmt.Errorf("serve: request abandoned: %w", ctx.Err())
	}
}

// requestContext applies the server's deadline policy: the caller's
// deadline wins when present (capped at MaxTimeout); otherwise
// DefaultTimeout applies.
func (s *Server) requestContext(ctx context.Context) (context.Context, context.CancelFunc) {
	limit := time.Duration(0)
	if _, hasDeadline := ctx.Deadline(); !hasDeadline {
		limit = s.opts.DefaultTimeout
	}
	if s.opts.MaxTimeout > 0 && (limit == 0 || limit > s.opts.MaxTimeout) {
		if d, ok := ctx.Deadline(); !ok || time.Until(d) > s.opts.MaxTimeout {
			limit = s.opts.MaxTimeout
		}
	}
	if limit <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, limit)
}

// prepare resolves the MEGA path representation for one request: cache
// hit, fresh traversal behind the circuit breaker, or — when
// preprocessing fails or the breaker is open — the degraded fallback
// (served by the GAT-free engine without a path representation). The
// request always proceeds; degradation is visible in the Prediction.
func (s *Server) prepare(p *pending) {
	key := s.repKey(p.inst.G.Fingerprint())
	if faults.Inject(faults.ServeCacheGet) == nil {
		if prep, ok := s.cache.Get(key); ok {
			p.prep, p.cacheHit = prep, true
			return
		}
	}
	if !s.breaker.allow() {
		s.degrade(p)
		return
	}
	t0 := time.Now()
	err := faults.Inject(faults.ServePrepare)
	var prep *models.PreparedRep
	if err == nil {
		prep, err = models.PrepareMega(p.inst.G, s.opts.Mega)
	}
	s.metrics.preprocess.observe(time.Since(t0))
	if err != nil {
		s.breaker.failure()
		s.metrics.prepareFailures.Add(1)
		s.degrade(p)
		return
	}
	s.breaker.success()
	if faults.Inject(faults.ServeCachePut) == nil {
		s.cache.Put(key, prep)
	}
	p.prep = prep
}

func (s *Server) degrade(p *pending) {
	p.degraded = true
	s.metrics.degraded.Add(1)
}

// validate rejects instances the embedding tables cannot index — an
// out-of-vocabulary ID would panic deep inside the forward pass otherwise.
func (s *Server) validate(inst datasets.Instance) error {
	cfg := s.meta.Config
	g := inst.G
	if g == nil || g.NumNodes() == 0 {
		return fmt.Errorf("%w: empty graph", ErrInvalidInstance)
	}
	if g.Directed() {
		return fmt.Errorf("%w: serving covers undirected graphs (the paper's setting)", ErrInvalidInstance)
	}
	if len(inst.NodeFeat) != g.NumNodes() {
		return fmt.Errorf("%w: %d node features for %d nodes", ErrInvalidInstance, len(inst.NodeFeat), g.NumNodes())
	}
	if len(inst.EdgeFeat) != g.NumEdges() {
		return fmt.Errorf("%w: %d edge features for %d edges", ErrInvalidInstance, len(inst.EdgeFeat), g.NumEdges())
	}
	for i, f := range inst.NodeFeat {
		if f < 0 || int(f) >= cfg.NodeTypes {
			return fmt.Errorf("%w: node feature %d = %d outside vocabulary [0,%d)", ErrInvalidInstance, i, f, cfg.NodeTypes)
		}
	}
	for i, f := range inst.EdgeFeat {
		if f < 0 || int(f) >= cfg.EdgeTypes {
			return fmt.Errorf("%w: edge feature %d = %d outside vocabulary [0,%d)", ErrInvalidInstance, i, f, cfg.EdgeTypes)
		}
	}
	return nil
}

// runBatch triages a flushed batch — shutdown abort, expired requests,
// degraded split — then runs the forward pass(es) and scatters per-graph
// output rows back to their callers. Every pending in the batch is
// finished exactly once on every path.
func (s *Server) runBatch(batch []*pending) {
	// The dispatch injection point sits outside the guarded forward on
	// purpose: a panic here escapes to the worker wrapper and exercises
	// worker replacement.
	if err := faults.Inject(faults.ServeDispatch); err != nil {
		for _, p := range batch {
			p.finish(outcome{err: err})
		}
		return
	}
	if s.aborting.Load() {
		for _, p := range batch {
			p.finish(outcome{err: ErrShuttingDown})
		}
		return
	}
	now := time.Now()
	var normal, degraded []*pending
	for _, p := range batch {
		if err := p.ctx.Err(); err != nil {
			// Abandoned while queued: answer the (already departed)
			// caller without burning forward-pass compute on it.
			p.finish(outcome{err: fmt.Errorf("serve: expired in queue: %w", err)})
			continue
		}
		s.metrics.queue.observe(now.Sub(p.enqueued))
		if p.degraded {
			degraded = append(degraded, p)
		} else {
			normal = append(normal, p)
		}
	}
	s.runGroup(normal, s.opts.Engine)
	s.runGroup(degraded, models.EngineDGL)
}

// runGroup forwards one engine-homogeneous group and answers it.
func (s *Server) runGroup(group []*pending, engine models.EngineKind) {
	if len(group) == 0 {
		return
	}
	start := time.Now()
	preds, err := s.forward(group, engine)
	s.metrics.observeBatch(len(group), time.Since(start))
	if err != nil {
		for _, p := range group {
			p.finish(outcome{err: err})
		}
		return
	}
	for i, p := range group {
		p.finish(outcome{pred: preds[i]})
	}
}

// forward builds the engine context for the batch and runs the model,
// converting panics from deeper layers into errors so one bad batch
// cannot take the worker down. Panics raised on compute-pool helper
// goroutines arrive here as compute.PanicError re-raised on this
// goroutine, so the recover genuinely covers the whole forward pass.
func (s *Server) forward(batch []*pending, engine models.EngineKind) (preds []Prediction, err error) {
	defer func() {
		if r := recover(); r != nil {
			preds, err = nil, fmt.Errorf("serve: forward pass panicked: %v", r)
		}
	}()
	if err := faults.Inject(faults.ServeForward); err != nil {
		return nil, err
	}
	insts := make([]datasets.Instance, len(batch))
	for i, p := range batch {
		insts[i] = p.inst
	}
	var ctx *models.Context
	if engine == models.EngineMega {
		preps := make([]*models.PreparedRep, len(batch))
		for i, p := range batch {
			preps[i] = p.prep
		}
		ctx, err = models.NewMegaContextFromReps(insts, preps, nil, s.meta.Config.Dim)
	} else {
		ctx, err = models.NewDGLContext(insts, nil, s.meta.Config.Dim)
	}
	if err != nil {
		return nil, err
	}
	ctx.Scratch = s.arena
	var out *tensor.Tensor
	precision := ""
	if engine == models.EngineMega && s.modelF32 != nil {
		// Float32 fast path. The shard engines (in-process and
		// distributed) are float64 constructs; batches that would have
		// sharded count as fallbacks so capacity dashboards see the trade
		// explicitly.
		if (s.opts.ShardWorkers > 1 || s.super != nil) && batchVertices(insts) >= s.opts.ShardVertexThreshold {
			s.metrics.shardFallback("f32_suppressed")
		}
		f32out := s.modelF32.Forward(ctx, s.arena)
		out = f32out.Upcast()
		s.arena.PutF32(f32out)
		precision = PrecisionF32
	} else if s.super != nil && engine == models.EngineMega && batchVertices(insts) >= s.opts.ShardVertexThreshold {
		out, err = s.distForward(ctx, insts)
		if err != nil {
			// The whole replica group is down (or the dist breaker is
			// open): degrade this batch to the DGL fallback engine — a
			// different attention layout, never a lost response.
			s.metrics.shardFallback("group_down")
			if ctx, err = models.NewDGLContext(insts, nil, s.meta.Config.Dim); err != nil {
				return nil, err
			}
			ctx.Scratch = s.arena
			for _, p := range batch {
				if !p.degraded {
					s.degrade(p)
				}
			}
			out = s.model.Forward(ctx)
		}
	} else if eng := s.shardEngine(ctx, engine, insts); eng != nil {
		out = eng.Forward()
		s.metrics.observeShard(eng.Stats())
	} else {
		out = s.model.Forward(ctx)
	}
	cols := out.Cols()
	preds = make([]Prediction, len(batch))
	for i, p := range batch {
		row := make([]float64, cols)
		copy(row, out.Data[i*cols:(i+1)*cols])
		pred := Prediction{Output: row, CacheHit: p.cacheHit, Degraded: p.degraded, Precision: precision}
		if s.meta.Task == datasets.TaskClassification {
			best := 0
			for j := 1; j < cols; j++ {
				if row[j] > row[best] {
					best = j
				}
			}
			label := best
			pred.Label = &label
		}
		preds[i] = pred
	}
	return preds, nil
}

// distForward runs one shard-eligible MEGA batch through the megashard
// worker fleet and assembles the answer from the returned final embeddings.
// The failover ladder inside the supervisor (retry on the same replica,
// transparent failover to a peer, only then ErrGroupDown) keeps answers
// bit-identical to the in-process forward; this method adds the serve-side
// rungs: a structural ErrUnshardable falls back to the exact local MEGA
// forward (counted per-reason on /metrics, never against the dist breaker),
// and any fleet error feeds the dist breaker so the caller degrades to DGL.
func (s *Server) distForward(ctx *models.Context, insts []datasets.Instance) (*tensor.Tensor, error) {
	if !s.distBreaker.allow() {
		return nil, fmt.Errorf("%w: dist breaker open", ErrGroupDegraded)
	}
	gt := s.model.(*models.GT) // guaranteed by New when Options.Dist is set
	outcome, err := s.super.Forward(context.Background(), insts, s.opts.Mega.TraverseOptions(), s.meta.Config.Dim, insts[0].G.Fingerprint())
	if err != nil {
		if errors.Is(err, models.ErrUnshardable) {
			// A property of the graph, not the fleet: serve the exact
			// answer locally and leave the breaker alone.
			s.metrics.shardFallback("unshardable")
			return s.model.Forward(ctx), nil
		}
		s.distBreaker.failure()
		return nil, err
	}
	s.distBreaker.success()
	s.metrics.observeShard(outcome.Stats)
	return gt.ReadoutFromFinal(ctx, outcome.FinalH)
}

// ErrGroupDegraded reports that the distributed shard path was unavailable
// (whole replica group down, or the dist breaker open after consecutive
// group failures) and the batch was served by the DGL fallback engine.
var ErrGroupDegraded = errors.New("serve: distributed shard group unavailable")

// shardEngine decides whether a batch is large enough to run through the
// shard-parallel execution engine and builds one over the batch context if
// so. It returns nil whenever the batch should take the plain
// single-engine forward instead: sharding disabled, wrong engine or model,
// total vertices under the threshold, or an unshardable path (e.g. too
// short to cut into 8 µchunks) — the last case also counts a fallback on
// /metrics. The shard forward is bit-identical to the single-engine pass,
// so falling back never changes an answer.
func (s *Server) shardEngine(ctx *models.Context, engine models.EngineKind, insts []datasets.Instance) *models.ShardEngine {
	if s.opts.ShardWorkers <= 1 || engine != models.EngineMega {
		return nil
	}
	gt, ok := s.model.(*models.GT)
	if !ok {
		return nil
	}
	if batchVertices(insts) < s.opts.ShardVertexThreshold {
		return nil
	}
	eng, err := models.NewShardEngine(gt, ctx, s.opts.ShardWorkers)
	if err != nil {
		s.metrics.shardFallback("unshardable")
		return nil
	}
	return eng
}

// batchVertices totals the batch's node count — the shard-threshold input.
func batchVertices(insts []datasets.Instance) int {
	vertices := 0
	for _, inst := range insts {
		vertices += inst.G.NumNodes()
	}
	return vertices
}

// GraphRequest is the /predict JSON body: an explicit graph with
// categorical features, matching datasets.Instance.
type GraphRequest struct {
	NumNodes int        `json:"num_nodes"`
	Edges    [][2]int32 `json:"edges"`
	// NodeFeats[v] / EdgeFeats[e] are categorical IDs in the model's
	// vocabularies. Omitted slices default to all-zero features.
	NodeFeats []int32 `json:"node_feats,omitempty"`
	EdgeFeats []int32 `json:"edge_feats,omitempty"`
	// TimeoutMs overrides the server's default request deadline for this
	// request, capped at the server's MaxTimeout.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// Instance converts the wire format into a validated datasets.Instance.
func (r *GraphRequest) Instance() (datasets.Instance, error) {
	edges := make([]graph.Edge, len(r.Edges))
	for i, e := range r.Edges {
		edges[i] = graph.Edge{Src: e[0], Dst: e[1]}
	}
	g, err := graph.New(r.NumNodes, edges, false)
	if err != nil {
		return datasets.Instance{}, err
	}
	nf := r.NodeFeats
	if nf == nil {
		nf = make([]int32, g.NumNodes())
	}
	ef := r.EdgeFeats
	if ef == nil {
		ef = make([]int32, g.NumEdges())
	}
	return datasets.Instance{G: g, NodeFeat: nf, EdgeFeat: ef}, nil
}

const maxRequestBody = 8 << 20

// Health is the /healthz document: liveness plus the failure-domain state
// an operator (or load balancer) needs to interpret degraded service.
type Health struct {
	// Status is "ok", "degraded" (breaker not closed), or "stopping".
	Status string `json:"status"`
	// Breaker is the preprocessing circuit breaker state.
	Breaker string `json:"breaker"`
	// QueueDepth/QueueCapacity describe admission headroom.
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	// Workers is the configured worker-pool size (kept constant by
	// automatic replacement); WorkerRestarts counts replacements.
	Workers        int    `json:"workers"`
	WorkerRestarts uint64 `json:"worker_restarts"`
	// DistWorkers lists per-worker liveness for the megashard fleet
	// (distributed serving only): address, replica group, alive/dead, time
	// since the last heartbeat, and per-worker job/failure counts.
	DistWorkers []dist.WorkerHealth `json:"dist_workers,omitempty"`
	// DistGroupsAlive counts live members per replica group; a zero entry
	// means that group's batches are degrading to the fallback engine.
	DistGroupsAlive []int `json:"dist_groups_alive,omitempty"`
}

// HealthSnapshot builds the /healthz document.
func (s *Server) HealthSnapshot() Health {
	h := Health{
		Breaker:        string(s.breaker.State()),
		QueueDepth:     len(s.batcher.in),
		QueueCapacity:  cap(s.batcher.in),
		Workers:        s.opts.Workers,
		WorkerRestarts: s.metrics.workerRestarts.Load(),
	}
	groupDown := false
	if s.super != nil {
		h.DistWorkers = s.super.Health()
		h.DistGroupsAlive = s.super.GroupsAlive()
		for _, alive := range h.DistGroupsAlive {
			if alive == 0 {
				groupDown = true
			}
		}
	}
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	switch {
	case closed:
		h.Status = "stopping"
	case h.Breaker != string(BreakerClosed):
		h.Status = "degraded"
	case groupDown || s.distBreaker.State() != BreakerClosed:
		h.Status = "degraded"
	default:
		h.Status = "ok"
	}
	return h
}

// Handler returns the HTTP surface: POST /predict, POST /update,
// GET /metrics, GET /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/update", s.handleUpdate)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req GraphRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	inst, err := req.Instance()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// r.Context() ends when the client disconnects, so abandoned
	// connections cancel their queued work; a per-request timeout_ms
	// narrows it further (PredictCtx caps both at MaxTimeout).
	ctx := r.Context()
	if req.TimeoutMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMs)*time.Millisecond)
		defer cancel()
	}
	pred, err := s.PredictCtx(ctx, inst)
	switch {
	case errors.Is(err, ErrInvalidInstance), errors.Is(err, graph.ErrEdgeOutOfRange):
		httpError(w, http.StatusBadRequest, err.Error())
		return
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusGatewayTimeout, err.Error())
		return
	case errors.Is(err, ErrClosed), errors.Is(err, ErrShuttingDown):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(pred)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.MetricsSnapshot(true))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.HealthSnapshot()
	w.Header().Set("Content-Type", "application/json")
	if h.Status == "stopping" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(h)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// repKey combines a graph's topology fingerprint with the server's
// traverse/sparsify options digest — the full identity of a prepared rep.
func (s *Server) repKey(fp graph.Fingerprint) RepKey {
	return RepKey{Topo: fp, Opts: s.repOpts}
}
