package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"mega/internal/compute"
	"mega/internal/datasets"
	"mega/internal/graph"
	"mega/internal/models"
	"mega/internal/tensor"
	"mega/internal/train"
)

// Options tunes the inference service.
type Options struct {
	// Engine selects the attention engine (default EngineMega — the
	// engine whose preprocessing the cache amortises).
	Engine models.EngineKind
	// MaxBatch caps how many requests are packed into one block-diagonal
	// forward pass (default 16).
	MaxBatch int
	// MaxWait bounds how long an open batch waits for company before it
	// is flushed (default 2ms).
	MaxWait time.Duration
	// Workers sizes the forward-pass worker pool (default GOMAXPROCS).
	Workers int
	// ComputeBudget caps the compute worker pool (internal/compute) while
	// this server runs, so intra-op parallelism composes with the
	// request-level Workers without oversubscribing the machine. The
	// default is max(1, NumCPU − Workers + 1): each forward pass runs on
	// its worker goroutine plus up to ComputeBudget−1 helpers, keeping
	// Workers + ComputeBudget − 1 ≤ NumCPU. The budget is process-global
	// (it calls compute.SetMaxThreads), so with multiple servers in one
	// process the last one constructed wins.
	ComputeBudget int
	// CacheCapacity bounds the path-representation LRU in entries
	// (default 4096; <=0 after explicit set disables caching).
	CacheCapacity int
	// QueueDepth is the pending-request channel capacity (default 256).
	QueueDepth int
	// Mega configures traversal options for the MEGA engine. Must match
	// across the server's lifetime: cache keys cover topology only, so
	// options are per-server, not per-request.
	Mega models.MegaOptions

	// cacheSet marks CacheCapacity as deliberately chosen, letting 0 mean
	// "disabled" rather than "default".
	cacheSet bool
}

// WithCacheCapacity returns o with an explicit cache bound; use capacity 0
// to disable caching outright.
func (o Options) WithCacheCapacity(capacity int) Options {
	o.CacheCapacity = capacity
	o.cacheSet = true
	return o
}

func (o Options) withDefaults() Options {
	if o.Engine == 0 {
		o.Engine = models.EngineMega
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 16
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 2 * time.Millisecond
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.ComputeBudget <= 0 {
		o.ComputeBudget = runtime.NumCPU() - o.Workers + 1
		if o.ComputeBudget < 1 {
			o.ComputeBudget = 1
		}
	}
	if o.CacheCapacity == 0 && !o.cacheSet {
		o.CacheCapacity = 4096
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	return o
}

// Prediction is the service's answer for one graph.
type Prediction struct {
	// Output is the model's raw output row: one scalar for regression,
	// class logits for classification.
	Output []float64 `json:"output"`
	// Label is the argmax class (classification checkpoints only).
	Label *int `json:"label,omitempty"`
	// CacheHit reports whether preprocessing was served from the
	// path-representation cache.
	CacheHit bool `json:"cache_hit"`
}

// Server is a concurrent batched inference service over one trained model.
// The model's parameters are read-only after load, so any number of
// workers may run Forward concurrently.
type Server struct {
	model   models.Model
	meta    train.Checkpoint
	opts    Options
	cache   *RepCache
	metrics *Metrics
	batcher *batcher
	// arena pools fused-attention scratch across batches; shared by all
	// workers (Arena is concurrency-safe), so steady-state serving stops
	// allocating in the attention path.
	arena *tensor.Arena

	mu     sync.RWMutex // guards closed vs. in-flight enqueues
	closed bool
	wg     sync.WaitGroup // dispatcher + workers
}

// Service errors.
var (
	ErrClosed          = errors.New("serve: server is closed")
	ErrInvalidInstance = errors.New("serve: invalid instance")
)

// New starts the dispatcher and worker pool around a loaded model. meta
// must describe model (its Config validates request vocabularies and sets
// the output interpretation).
func New(model models.Model, meta train.Checkpoint, opts Options) *Server {
	opts = opts.withDefaults()
	compute.SetMaxThreads(opts.ComputeBudget)
	s := &Server{
		model:   model,
		meta:    meta,
		opts:    opts,
		cache:   NewRepCache(opts.CacheCapacity),
		metrics: NewMetrics(),
		batcher: newBatcher(opts.MaxBatch, opts.MaxWait, opts.QueueDepth),
		arena:   tensor.NewArena(),
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.batcher.run()
	}()
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for batch := range s.batcher.out {
				s.runBatch(batch)
			}
		}()
	}
	return s
}

// NewFromCheckpointFile loads a megatrain checkpoint and serves it.
func NewFromCheckpointFile(path string, opts Options) (*Server, error) {
	meta, model, err := train.LoadCheckpointFile(path)
	if err != nil {
		return nil, err
	}
	return New(model, meta, opts), nil
}

// Meta returns the checkpoint description being served.
func (s *Server) Meta() train.Checkpoint { return s.meta }

// CacheStats snapshots the path-representation cache counters.
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// MetricsSnapshot freezes the service counters and latency histograms.
func (s *Server) MetricsSnapshot(withBuckets bool) Snapshot {
	return s.metrics.Snapshot(s.cache.Stats(), withBuckets)
}

// Close stops accepting requests, drains in-flight batches, and waits for
// the worker pool to exit. It is idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.batcher.in)
	s.mu.Unlock()
	s.wg.Wait()
}

// Predict runs one graph through the service: validate, preprocess (cache
// hit or fresh traversal), enqueue into the micro-batcher, and wait for
// the batched forward pass. Safe for arbitrary concurrent callers.
func (s *Server) Predict(inst datasets.Instance) (Prediction, error) {
	s.metrics.requests.Add(1)
	start := time.Now()
	if err := s.validate(inst); err != nil {
		s.metrics.errors.Add(1)
		return Prediction{}, err
	}
	p := &pending{inst: inst, enqueued: start, done: make(chan outcome, 1)}

	if s.opts.Engine == models.EngineMega {
		key := inst.G.Fingerprint()
		if prep, ok := s.cache.Get(key); ok {
			p.prep, p.cacheHit = prep, true
		} else {
			t0 := time.Now()
			prep, err := models.PrepareMega(inst.G, s.opts.Mega)
			s.metrics.preprocess.observe(time.Since(t0))
			if err != nil {
				s.metrics.errors.Add(1)
				return Prediction{}, err
			}
			s.cache.Put(key, prep)
			p.prep = prep
		}
	}

	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		s.metrics.errors.Add(1)
		return Prediction{}, ErrClosed
	}
	s.batcher.in <- p
	s.mu.RUnlock()

	out := <-p.done
	s.metrics.total.observe(time.Since(start))
	if out.err != nil {
		s.metrics.errors.Add(1)
		return Prediction{}, out.err
	}
	return out.pred, nil
}

// validate rejects instances the embedding tables cannot index — an
// out-of-vocabulary ID would panic deep inside the forward pass otherwise.
func (s *Server) validate(inst datasets.Instance) error {
	cfg := s.meta.Config
	g := inst.G
	if g == nil || g.NumNodes() == 0 {
		return fmt.Errorf("%w: empty graph", ErrInvalidInstance)
	}
	if g.Directed() {
		return fmt.Errorf("%w: serving covers undirected graphs (the paper's setting)", ErrInvalidInstance)
	}
	if len(inst.NodeFeat) != g.NumNodes() {
		return fmt.Errorf("%w: %d node features for %d nodes", ErrInvalidInstance, len(inst.NodeFeat), g.NumNodes())
	}
	if len(inst.EdgeFeat) != g.NumEdges() {
		return fmt.Errorf("%w: %d edge features for %d edges", ErrInvalidInstance, len(inst.EdgeFeat), g.NumEdges())
	}
	for i, f := range inst.NodeFeat {
		if f < 0 || int(f) >= cfg.NodeTypes {
			return fmt.Errorf("%w: node feature %d = %d outside vocabulary [0,%d)", ErrInvalidInstance, i, f, cfg.NodeTypes)
		}
	}
	for i, f := range inst.EdgeFeat {
		if f < 0 || int(f) >= cfg.EdgeTypes {
			return fmt.Errorf("%w: edge feature %d = %d outside vocabulary [0,%d)", ErrInvalidInstance, i, f, cfg.EdgeTypes)
		}
	}
	return nil
}

// runBatch packs a flushed batch into one context, runs the forward pass,
// and scatters per-graph output rows back to their callers.
func (s *Server) runBatch(batch []*pending) {
	now := time.Now()
	for _, p := range batch {
		s.metrics.queue.observe(now.Sub(p.enqueued))
	}
	preds, err := s.forward(batch)
	s.metrics.observeBatch(len(batch), time.Since(now))
	if err != nil {
		for _, p := range batch {
			p.done <- outcome{err: err}
		}
		return
	}
	for i, p := range batch {
		p.done <- outcome{pred: preds[i]}
	}
}

// forward builds the engine context for the batch and runs the model,
// converting panics from deeper layers into errors so one bad batch
// cannot take the worker down.
func (s *Server) forward(batch []*pending) (preds []Prediction, err error) {
	defer func() {
		if r := recover(); r != nil {
			preds, err = nil, fmt.Errorf("serve: forward pass panicked: %v", r)
		}
	}()
	insts := make([]datasets.Instance, len(batch))
	for i, p := range batch {
		insts[i] = p.inst
	}
	var ctx *models.Context
	if s.opts.Engine == models.EngineMega {
		preps := make([]*models.PreparedRep, len(batch))
		for i, p := range batch {
			preps[i] = p.prep
		}
		ctx, err = models.NewMegaContextFromReps(insts, preps, nil, s.meta.Config.Dim)
	} else {
		ctx, err = models.NewDGLContext(insts, nil, s.meta.Config.Dim)
	}
	if err != nil {
		return nil, err
	}
	ctx.Scratch = s.arena
	out := s.model.Forward(ctx)
	cols := out.Cols()
	preds = make([]Prediction, len(batch))
	for i, p := range batch {
		row := make([]float64, cols)
		copy(row, out.Data[i*cols:(i+1)*cols])
		pred := Prediction{Output: row, CacheHit: p.cacheHit}
		if s.meta.Task == datasets.TaskClassification {
			best := 0
			for j := 1; j < cols; j++ {
				if row[j] > row[best] {
					best = j
				}
			}
			label := best
			pred.Label = &label
		}
		preds[i] = pred
	}
	return preds, nil
}

// GraphRequest is the /predict JSON body: an explicit graph with
// categorical features, matching datasets.Instance.
type GraphRequest struct {
	NumNodes int        `json:"num_nodes"`
	Edges    [][2]int32 `json:"edges"`
	// NodeFeats[v] / EdgeFeats[e] are categorical IDs in the model's
	// vocabularies. Omitted slices default to all-zero features.
	NodeFeats []int32 `json:"node_feats,omitempty"`
	EdgeFeats []int32 `json:"edge_feats,omitempty"`
}

// Instance converts the wire format into a validated datasets.Instance.
func (r *GraphRequest) Instance() (datasets.Instance, error) {
	edges := make([]graph.Edge, len(r.Edges))
	for i, e := range r.Edges {
		edges[i] = graph.Edge{Src: e[0], Dst: e[1]}
	}
	g, err := graph.New(r.NumNodes, edges, false)
	if err != nil {
		return datasets.Instance{}, err
	}
	nf := r.NodeFeats
	if nf == nil {
		nf = make([]int32, g.NumNodes())
	}
	ef := r.EdgeFeats
	if ef == nil {
		ef = make([]int32, g.NumEdges())
	}
	return datasets.Instance{G: g, NodeFeat: nf, EdgeFeat: ef}, nil
}

const maxRequestBody = 8 << 20

// Handler returns the HTTP surface: POST /predict, GET /metrics,
// GET /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	return mux
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req GraphRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	inst, err := req.Instance()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	pred, err := s.Predict(inst)
	switch {
	case errors.Is(err, ErrInvalidInstance), errors.Is(err, graph.ErrEdgeOutOfRange):
		httpError(w, http.StatusBadRequest, err.Error())
		return
	case errors.Is(err, ErrClosed):
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(pred)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.MetricsSnapshot(true))
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
