package faults

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisabledIsNoOp(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("Enabled() after Disable")
	}
	for _, name := range Names() {
		if err := Inject(name); err != nil {
			t.Fatalf("disabled Inject(%s) = %v", name, err)
		}
	}
	if r := Report(); r != nil {
		t.Fatalf("disabled Report = %v", r)
	}
}

func TestErrorActionAndTyping(t *testing.T) {
	defer Disable()
	Enable(Plan{Seed: 1, Points: []PointConfig{{Name: ServePrepare, Prob: 1}}})
	err := Inject(ServePrepare)
	if err == nil {
		t.Fatal("prob 1 did not fire")
	}
	if !IsInjected(err) || !errors.Is(err, Injected()) {
		t.Fatalf("injected error not recognised: %v", err)
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Point != ServePrepare {
		t.Fatalf("err = %#v", err)
	}
	// Unarmed points stay silent under an active plan.
	if err := Inject(ServeForward); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
}

func TestPanicAction(t *testing.T) {
	defer Disable()
	Enable(Plan{Seed: 1, Points: []PointConfig{{Name: ServeForward, Prob: 1, Action: ActPanic}}})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic")
		}
		fe, ok := r.(*Error)
		if !ok || fe.Point != ServeForward || !fe.Panicked {
			t.Fatalf("panic value = %#v", r)
		}
	}()
	Inject(ServeForward)
}

func TestDelayAction(t *testing.T) {
	defer Disable()
	const d = 20 * time.Millisecond
	Enable(Plan{Seed: 1, Points: []PointConfig{{Name: ServeDispatch, Prob: 1, Action: ActDelay, Delay: d}}})
	start := time.Now()
	if err := Inject(ServeDispatch); err != nil {
		t.Fatalf("delay action returned error: %v", err)
	}
	if got := time.Since(start); got < d {
		t.Fatalf("delay %v < configured %v", got, d)
	}
}

func TestBudgetCapsFires(t *testing.T) {
	defer Disable()
	Enable(Plan{Seed: 1, Points: []PointConfig{{Name: ServeCacheGet, Prob: 1, Budget: 3}}})
	fired := 0
	for i := 0; i < 10; i++ {
		if Inject(ServeCacheGet) != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times with budget 3", fired)
	}
	rep := Report()
	if len(rep) != 1 || rep[0].Hits != 10 || rep[0].Fired != 3 {
		t.Fatalf("report = %+v", rep)
	}
}

// TestDeterministicPattern pins that the fire pattern is a pure function
// of (seed, name, hit index): two runs agree hit-for-hit, and a different
// seed produces a different pattern.
func TestDeterministicPattern(t *testing.T) {
	defer Disable()
	pattern := func(seed int64) string {
		Enable(Plan{Seed: seed, Points: []PointConfig{{Name: ServeCachePut, Prob: 0.5}}})
		var b strings.Builder
		for i := 0; i < 64; i++ {
			if Inject(ServeCachePut) != nil {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		return b.String()
	}
	a, b := pattern(42), pattern(42)
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	if c := pattern(43); c == a {
		t.Fatalf("different seeds produced identical 64-hit patterns: %s", a)
	}
	ones := strings.Count(a, "1")
	if ones < 16 || ones > 48 {
		t.Errorf("prob 0.5 fired %d/64 times — decide() looks biased", ones)
	}
}

func TestConcurrentInjectIsSafe(t *testing.T) {
	defer Disable()
	Enable(Plan{Seed: 7, Points: []PointConfig{
		{Name: ServeCacheGet, Prob: 0.3},
		{Name: ServeCachePut, Prob: 0.3},
	}})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				Inject(ServeCacheGet)
				Inject(ServeCachePut)
			}
		}()
	}
	wg.Wait()
	for _, p := range Report() {
		if p.Hits != 1600 {
			t.Errorf("%s hits = %d, want 1600", p.Name, p.Hits)
		}
	}
}

func TestWriteReport(t *testing.T) {
	defer Disable()
	Enable(Plan{Seed: 1, Points: []PointConfig{
		{Name: TrainCkptSave, Prob: 1},
		{Name: TrainCkptLoad, Prob: 0},
	}})
	Inject(TrainCkptSave)
	Inject(TrainCkptLoad)
	var buf bytes.Buffer
	if err := WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, "train.ckpt.save hits=1 fired=1") ||
		!strings.Contains(got, "train.ckpt.load hits=1 fired=0") {
		t.Fatalf("report:\n%s", got)
	}
}

// BenchmarkInjectDisabled documents the disabled fast path the acceptance
// criteria lean on: one atomic load and a nil check.
func BenchmarkInjectDisabled(b *testing.B) {
	Disable()
	for i := 0; i < b.N; i++ {
		Inject(ServeForward)
	}
}

// fakeTB records ArmT's fatal path without killing the real test.
type fakeTB struct {
	fatal   bool
	cleanup []func()
}

func (f *fakeTB) Helper()               {}
func (f *fakeTB) Fatalf(string, ...any) { f.fatal = true }
func (f *fakeTB) Cleanup(fn func())     { f.cleanup = append(f.cleanup, fn) }
func (f *fakeTB) runCleanups() {
	for i := len(f.cleanup) - 1; i >= 0; i-- {
		f.cleanup[i]()
	}
}

func TestArmTArmsAndCleansUp(t *testing.T) {
	Disable()
	tb := &fakeTB{}
	ArmT(tb, Plan{Seed: 1, Points: []PointConfig{{Name: ServeForward, Prob: 1}}})
	if tb.fatal {
		t.Fatal("ArmT failed on a clean registry")
	}
	if !Enabled() {
		t.Fatal("ArmT did not enable the plan")
	}
	if err := Inject(ServeForward); !IsInjected(err) {
		t.Fatalf("armed point did not fire: %v", err)
	}
	tb.runCleanups()
	if Enabled() {
		t.Fatal("ArmT cleanup did not disable the plan")
	}
}

func TestArmTFailsFastWhenAlreadyArmed(t *testing.T) {
	Disable()
	Enable(Plan{Seed: 1})
	defer Disable()
	tb := &fakeTB{}
	ArmT(tb, Plan{Seed: 2})
	if !tb.fatal {
		t.Fatal("ArmT did not fail fast on an already-armed registry")
	}
}
