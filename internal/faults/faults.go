// Package faults is a deterministic, seedable fault-injection registry
// for chaos testing the serving and training harnesses. Hot paths declare
// named injection points (Inject calls); a test or operator enables a Plan
// that arms some of those points with a probability, a budget, and an
// action — return a typed error, panic, or delay. Disabled (the default),
// Inject is a single atomic load and nil check, so production binaries pay
// nothing for carrying the hooks.
//
// Determinism: whether a point fires on its k-th hit is a pure function of
// (plan seed, point name, k) — a splitmix-style hash, not a shared RNG —
// so each point's fire pattern is reproducible under a fixed seed even
// when goroutines interleave hits across different points. Only the
// per-point hit ordering matters, and each point counts its own hits
// under the registry lock.
package faults

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registered injection-point names. Keeping them in one place doubles as
// the catalog the chaos harness arms (see Names).
const (
	// ServeCacheGet fires on path-representation cache lookups; an
	// injected error forces a miss (degraded to recompute, never fatal).
	ServeCacheGet = "serve.cache.get"
	// ServeCachePut fires on cache inserts; an injected error skips the
	// insert (the entry is recomputed next time).
	ServeCachePut = "serve.cache.put"
	// ServePrepare fires inside MEGA preprocessing on the serving path;
	// errors count against the preprocessing circuit breaker.
	ServePrepare = "serve.prepare"
	// ServeDispatch fires at batch dispatch on the worker, outside the
	// forward recover — a panic here exercises worker replacement.
	ServeDispatch = "serve.dispatch"
	// ServeForward fires inside the guarded forward pass — a panic here
	// exercises the per-batch recover.
	ServeForward = "serve.forward"
	// TrainCkptSave fires mid-checkpoint-write, after partial bytes hit
	// the temp file and before the atomic rename.
	TrainCkptSave = "train.ckpt.save"
	// TrainCkptLoad fires on checkpoint reads, before parsing.
	TrainCkptLoad = "train.ckpt.load"
	// DistDial fires before the distributed transport dials a worker or
	// peer; an injected error is a connection failure (retried with
	// backoff, then treated as a dead member).
	DistDial = "dist.dial"
	// DistSend fires before every wire frame write on the distributed
	// transport; an injected error poisons that connection, exercising
	// the supervisor's failover ladder without killing a process.
	DistSend = "dist.send"
)

// Names lists every registered injection point, sorted.
func Names() []string {
	return []string{
		DistDial, DistSend,
		ServeCacheGet, ServeCachePut, ServePrepare, ServeDispatch,
		ServeForward, TrainCkptSave, TrainCkptLoad,
	}
}

// Action is what an armed point does when it fires.
type Action int

const (
	// ActError returns an *Error from Inject.
	ActError Action = iota
	// ActPanic panics with an *Error value.
	ActPanic
	// ActDelay sleeps for the configured Delay, then returns nil.
	ActDelay
)

func (a Action) String() string {
	switch a {
	case ActError:
		return "error"
	case ActPanic:
		return "panic"
	case ActDelay:
		return "delay"
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// PointConfig arms one injection point.
type PointConfig struct {
	// Name is the injection-point name (one of the registered constants;
	// arming an unknown name is allowed and simply never hit).
	Name string
	// Prob is the per-hit fire probability in [0, 1].
	Prob float64
	// Budget caps total fires for this point; 0 means unlimited.
	Budget int
	// Action selects error, panic, or delay (default ActError).
	Action Action
	// Delay is the sleep for ActDelay.
	Delay time.Duration
}

// Plan is a full injection configuration: a seed and the armed points.
type Plan struct {
	Seed   int64
	Points []PointConfig
}

// Error is the typed error for injected failures, both returned (ActError)
// and used as the panic value (ActPanic).
type Error struct {
	// Point names the injection point that fired.
	Point string
	// Panicked distinguishes the panic action in messages.
	Panicked bool
}

func (e *Error) Error() string {
	if e.Panicked {
		return fmt.Sprintf("faults: injected panic at %s", e.Point)
	}
	return fmt.Sprintf("faults: injected error at %s", e.Point)
}

// errInjected anchors errors.Is across all injected errors.
var errInjected = errors.New("faults: injected")

// Is makes errors.Is(err, faults.Injected()) match any injected error.
func (e *Error) Is(target error) bool { return target == errInjected }

// Injected returns the sentinel matched by every injected error, for
// errors.Is checks that don't care which point fired.
func Injected() error { return errInjected }

// IsInjected reports whether err (or its chain) was produced by Inject.
func IsInjected(err error) bool { return errors.Is(err, errInjected) }

type point struct {
	cfg   PointConfig
	hits  int // Inject calls that consulted this point
	fired int // times the action actually ran
}

type registry struct {
	seed   int64
	mu     sync.Mutex
	points map[string]*point
}

// active is nil when injection is disabled — the zero-cost fast path.
var active atomic.Pointer[registry]

// Enable installs plan, replacing any previous plan and resetting all
// counters.
func Enable(plan Plan) {
	r := &registry{seed: plan.Seed, points: make(map[string]*point, len(plan.Points))}
	for _, cfg := range plan.Points {
		r.points[cfg.Name] = &point{cfg: cfg}
	}
	active.Store(r)
}

// Disable turns injection off. Counters from the previous plan are
// discarded; snapshot with Report before disabling if they matter.
func Disable() { active.Store(nil) }

// Enabled reports whether a plan is installed.
func Enabled() bool { return active.Load() != nil }

// Inject is the hot-path hook: a nil-check when disabled, otherwise the
// armed point's decision for this hit. It returns an *Error, panics with
// an *Error, sleeps, or returns nil.
func Inject(name string) error {
	r := active.Load()
	if r == nil {
		return nil
	}
	return r.inject(name)
}

func (r *registry) inject(name string) error {
	r.mu.Lock()
	p, ok := r.points[name]
	if !ok {
		r.mu.Unlock()
		return nil
	}
	hit := p.hits
	p.hits++
	fire := p.cfg.Prob > 0 &&
		(p.cfg.Budget == 0 || p.fired < p.cfg.Budget) &&
		decide(r.seed, name, hit, p.cfg.Prob)
	if fire {
		p.fired++
	}
	cfg := p.cfg
	r.mu.Unlock()
	if !fire {
		return nil
	}
	switch cfg.Action {
	case ActPanic:
		panic(&Error{Point: name, Panicked: true})
	case ActDelay:
		time.Sleep(cfg.Delay)
		return nil
	default:
		return &Error{Point: name}
	}
}

// decide maps (seed, name, hit index) to a fire decision with probability
// prob — a pure function, so each point's pattern is reproducible
// regardless of how goroutines interleave hits across points.
func decide(seed int64, name string, hit int, prob float64) bool {
	if prob >= 1 {
		return true
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d", seed, name, hit)
	x := h.Sum64()
	// splitmix64 finalizer for avalanche over the fnv output.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11)/float64(1<<53) < prob
}

// PointReport is one point's counters.
type PointReport struct {
	Name  string `json:"name"`
	Hits  int    `json:"hits"`
	Fired int    `json:"fired"`
}

// Report snapshots hit/fire counters for every armed point, sorted by
// name. Empty when injection is disabled.
func Report() []PointReport {
	r := active.Load()
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]PointReport, 0, len(r.points))
	for name, p := range r.points {
		out = append(out, PointReport{Name: name, Hits: p.hits, Fired: p.fired})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteReport writes the coverage log — one "name hits fired" line per
// armed point — in a stable order (the CI chaos job uploads this).
func WriteReport(w io.Writer) error {
	for _, p := range Report() {
		if _, err := fmt.Fprintf(w, "%s hits=%d fired=%d\n", p.Name, p.Hits, p.Fired); err != nil {
			return err
		}
	}
	return nil
}
