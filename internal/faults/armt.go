package faults

// TB is the subset of testing.TB that ArmT needs. Declaring it locally
// keeps package faults free of a testing import, which would otherwise
// drag test flags into every production binary carrying the hooks.
type TB interface {
	Helper()
	Fatalf(format string, args ...any)
	Cleanup(func())
}

// ArmT enables plan for the duration of one test and guards the
// registry's process-global footgun: it fails fast if another plan is
// already armed (two tests sharing the registry silently corrupt each
// other's fire patterns and counters) and auto-Disables on cleanup, so a
// failing or panicking test can no longer leak an armed plan into the
// rest of the package run. Tests that arm faults must not run in
// parallel with each other; ArmT turns the collision into an immediate,
// attributable failure instead of a flaky downstream test.
func ArmT(t TB, plan Plan) {
	t.Helper()
	if Enabled() {
		t.Fatalf("faults: ArmT: a fault plan is already armed (missing Disable in a previous test, or two fault-arming tests running in parallel)")
	}
	Enable(plan)
	t.Cleanup(Disable)
}
