package mega

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section. Each benchmark runs the corresponding
// experiment driver at Quick scale so `go test -bench=.` regenerates every
// result; run `cmd/megabench -scale paper` for full-size reproductions.

import (
	"testing"

	"mega/internal/experiments"
	"mega/internal/gpusim"
)

// benchExperiment runs one experiment driver per iteration and reports its
// data volume, failing the benchmark if the driver errors.
func benchExperiment(b *testing.B, id string) {
	run, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	scale := experiments.Quick()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := run(scale)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(report.Lines) == 0 {
			b.Fatalf("%s produced no data", id)
		}
	}
}

// BenchmarkFig1bAttentionRatio regenerates Figure 1b: graph-attention vs
// global-attention completion-time ratio across sizes and feature dims.
func BenchmarkFig1bAttentionRatio(b *testing.B) { benchExperiment(b, "fig1b") }

// BenchmarkTable1ModelStats regenerates Table I: parameter volumes and
// scatter/gather call counts per model configuration.
func BenchmarkTable1ModelStats(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2GraphStats regenerates Table II: dataset statistics.
func BenchmarkTable2GraphStats(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable3DegreeStats regenerates Table III: degree-distribution
// consistency statistics including the KS test column.
func BenchmarkTable3DegreeStats(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkFig4SMEfficiency regenerates Figure 4: per-kernel SM efficiency
// under the conventional engine.
func BenchmarkFig4SMEfficiency(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5KernelTime regenerates Figure 5: kernel time shares across
// batch sizes.
func BenchmarkFig5KernelTime(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6KernelProfile regenerates Figure 6: global loads, stall
// percentages and call counts per kernel.
func BenchmarkFig6KernelProfile(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig8Isomorphism regenerates Figure 8: WL similarity of the path
// representation vs global attention.
func BenchmarkFig8Isomorphism(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9MemoryMetrics regenerates Figure 9: SM efficiency and
// memory-stall percentage, DGL vs MEGA.
func BenchmarkFig9MemoryMetrics(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10Runtime regenerates Figure 10: epoch runtime and sgemm
// share by batch size.
func BenchmarkFig10Runtime(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11AQSOL regenerates Figure 11: AQSOL convergence.
func BenchmarkFig11AQSOL(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12ZINC regenerates Figure 12: ZINC convergence under GT.
func BenchmarkFig12ZINC(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFig13CSL regenerates Figure 13: CSL convergence.
func BenchmarkFig13CSL(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkFig14CYCLES regenerates Figure 14: CYCLES convergence under GCN.
func BenchmarkFig14CYCLES(b *testing.B) { benchExperiment(b, "fig14") }

// BenchmarkFig15EdgeDrop regenerates Figure 15: AQSOL with 20% edge
// dropping.
func BenchmarkFig15EdgeDrop(b *testing.B) { benchExperiment(b, "fig15") }

// BenchmarkDistComm regenerates the §IV-B6 distributed-communication
// analysis.
func BenchmarkDistComm(b *testing.B) { benchExperiment(b, "dist") }

// --- ablation benches for the design decisions called out in DESIGN.md ---

// BenchmarkAblationFixedVsAdaptiveWindow compares revisit counts and path
// expansion under a fixed ω=1 window against the adaptive policy.
func BenchmarkAblationFixedVsAdaptiveWindow(b *testing.B) {
	rng := NewRand(1)
	g := BarabasiAlbert(rng, 500, 3)
	for _, tc := range []struct {
		name   string
		window int
	}{
		{name: "fixed1", window: 1},
		{name: "adaptive", window: 0},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var revisits int
			for i := 0; i < b.N; i++ {
				res, err := Traverse(g, TraverseOptions{Window: tc.window, EdgeCoverage: 1})
				if err != nil {
					b.Fatal(err)
				}
				revisits = res.Revisits
			}
			b.ReportMetric(float64(revisits), "revisits")
		})
	}
}

// BenchmarkAblationCoverage compares traversal cost and path length across
// edge-coverage targets θ.
func BenchmarkAblationCoverage(b *testing.B) {
	rng := NewRand(2)
	g := ErdosRenyiM(rng, 500, 2000)
	for _, theta := range []float64{0.5, 0.8, 1.0} {
		b.Run(coverageName(theta), func(b *testing.B) {
			var pathLen int
			for i := 0; i < b.N; i++ {
				res, err := Traverse(g, TraverseOptions{EdgeCoverage: theta})
				if err != nil {
					b.Fatal(err)
				}
				pathLen = res.Len()
			}
			b.ReportMetric(float64(pathLen), "pathlen")
		})
	}
}

func coverageName(theta float64) string {
	switch theta {
	case 0.5:
		return "theta50"
	case 0.8:
		return "theta80"
	default:
		return "theta100"
	}
}

// BenchmarkAblationTraceVsAnalyticGather contrasts the trace-driven cache
// simulation against a pure streaming model on identical gather work: the
// trace-driven path is what makes locality effects observable.
func BenchmarkAblationTraceVsAnalyticGather(b *testing.B) {
	const rows, rowBytes = 20000, 256
	rng := NewRand(3)
	idx := make([]int32, rows)
	for i := range idx {
		idx[i] = int32(rng.Intn(rows))
	}
	b.Run("trace", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim := NewSim(GTX1080Config())
			base := sim.Alloc(rows * rowBytes)
			sim.GatherRows("g", base, idx, rowBytes)
		}
	})
	b.Run("analytic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim := NewSim(GTX1080Config())
			base := sim.Alloc(rows * rowBytes)
			sim.Sequential("g", gpusim.KindBand, base, rows*rowBytes, false)
		}
	})
}
