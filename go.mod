module mega

go 1.22
